package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// ManifestSchema versions the manifest layout. Bump it when a field
// changes meaning, so downstream diff tooling can refuse mixed
// comparisons.
const ManifestSchema = 1

// Manifest is the machine-readable record of one evaluation run: the
// configuration that produced a set of results, the deterministic
// aggregate simulator counters, and the run's timing. It is written as
// JSON next to the results.
//
// The Sim section is a pure function of the simulated work: for a
// fixed command line it is byte-identical across runs, worker
// schedules and GOMAXPROCS settings (pinned by a test). Flags, Env and
// Timing describe the particular execution and are excluded from that
// guarantee — comparing two runs means diffing their Sim sections and
// reading Timing for context.
type Manifest struct {
	// Schema is ManifestSchema at write time.
	Schema int `json:"schema"`
	// Tool names the command that wrote the manifest.
	Tool string `json:"tool"`
	// Flags records every flag's final value, including defaults.
	// Output paths appear here, so Flags is not part of the
	// deterministic section.
	Flags map[string]string `json:"flags,omitempty"`
	// Env describes the executing toolchain and machine shape.
	Env EnvInfo `json:"env"`
	// Sim is the deterministic section; see the type comment.
	Sim SimSection `json:"sim"`
	// Timing is the wall-clock section.
	Timing TimingSection `json:"timing"`
}

// EnvInfo records the toolchain, build and machine the run executed
// on. The build fields come from debug.ReadBuildInfo and are empty in
// binaries built without module support (e.g. some test binaries).
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Module is the main module path, ModVersion its version (often
	// "(devel)" for local builds).
	Module     string `json:"module,omitempty"`
	ModVersion string `json:"mod_version,omitempty"`
	// VCSRevision, VCSTime and VCSModified stamp the source state the
	// binary was built from, when the build embedded VCS info.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// buildInfo fills the EnvInfo build fields from the running binary's
// embedded module and VCS metadata.
func (e *EnvInfo) buildInfo() {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	e.Module = bi.Main.Path
	e.ModVersion = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			e.VCSRevision = s.Value
		case "vcs.time":
			e.VCSTime = s.Value
		case "vcs.modified":
			e.VCSModified = s.Value == "true"
		}
	}
}

// JobCounts reconciles the runner's view of a campaign. For a run
// without cancellation: Submitted == Succeeded + Failed +
// FromCheckpoint, and the HistJobSeconds histogram holds exactly
// Succeeded + Failed - Drained observations (drained jobs never
// execute).
type JobCounts struct {
	Submitted      uint64 `json:"submitted"`
	Succeeded      uint64 `json:"succeeded"`
	Failed         uint64 `json:"failed"`
	FromCheckpoint uint64 `json:"from_checkpoint"`
	Drained        uint64 `json:"drained"`
	Retries        uint64 `json:"retries"`
	Timeouts       uint64 `json:"timeouts"`
	Panics         uint64 `json:"panics"`
}

// SimSection is the deterministic part of the manifest.
type SimSection struct {
	// Config holds the simulation-relevant configuration: stream
	// scale, section subset, seed scheme. Only values that are the
	// same for reruns of the same command line belong here.
	Config map[string]string `json:"config"`
	// Jobs reconciles the runner's job accounting.
	Jobs JobCounts `json:"jobs"`
	// Counters holds every registry counter outside the runner_*
	// namespace — the sim_* aggregates of cache.Stats, instructions
	// retired and predictor verdicts. Counter arithmetic is
	// commutative uint64 addition, so these are schedule-independent.
	Counters map[string]uint64 `json:"counters"`
}

// SectionTiming is one section's (or figure's) wall time.
type SectionTiming struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

// TimingSection is the nondeterministic part of the manifest.
type TimingSection struct {
	// Started is the run's start time, RFC3339Nano.
	Started string `json:"started"`
	// WallMS is the whole run's wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Sections lists per-section wall times, from spans, in End order.
	Sections []SectionTiming `json:"sections,omitempty"`
	// Gauges holds throughput-style instantaneous values
	// (accesses/sec, aggregate simulated IPC).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms summarizes timing distributions (per-job seconds).
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// NewManifest returns a manifest stamped with the schema version and
// the current environment.
func NewManifest(tool string) *Manifest {
	m := &Manifest{
		Schema: ManifestSchema,
		Tool:   tool,
		Env: EnvInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Sim: SimSection{
			Config:   map[string]string{},
			Counters: map[string]uint64{},
		},
		Timing: TimingSection{
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramStats{},
		},
	}
	m.Env.buildInfo()
	return m
}

// FillFromRegistry folds a registry snapshot into the manifest:
// runner_* counters become Sim.Jobs, every other counter lands in
// Sim.Counters, and gauges, histograms and spans land in Timing.
func (m *Manifest) FillFromRegistry(r *Registry) {
	snap := r.Snapshot()
	m.Sim.Jobs = JobCounts{
		Submitted:      snap.Counters[CtrJobsSubmitted],
		Succeeded:      snap.Counters[CtrJobsSucceeded],
		Failed:         snap.Counters[CtrJobsFailed],
		FromCheckpoint: snap.Counters[CtrJobsFromCheckpoint],
		Drained:        snap.Counters[CtrJobsDrained],
		Retries:        snap.Counters[CtrJobRetries],
		Timeouts:       snap.Counters[CtrJobTimeouts],
		Panics:         snap.Counters[CtrJobPanics],
	}
	for name, v := range snap.Counters {
		if !strings.HasPrefix(name, "runner_") {
			m.Sim.Counters[name] = v
		}
	}
	for name, v := range snap.Gauges {
		m.Timing.Gauges[name] = v
	}
	for name, h := range snap.Histograms {
		m.Timing.Histograms[name] = h
	}
	for _, sp := range snap.Spans {
		m.Timing.Sections = append(m.Timing.Sections, SectionTiming{
			Name:   sp.Name,
			WallMS: float64(sp.Duration) / float64(time.Millisecond),
		})
	}
}

// MarshalIndent renders the manifest as stable, human-diffable JSON
// (maps are key-sorted by encoding/json) with a trailing newline.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
