package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Structured leveled logging: one timestamped key=value line per
// event, shared by the service, the runner's degradation warnings and
// the CLIs, so every log consumer parses one format. A nil *Logger is
// a no-op, matching the rest of the package's nil-safety contract.
//
//	ts=2026-08-08T12:00:00.000Z level=warn msg="torn journal tail" component=runner lines=3

// Level orders log severities.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (valid: debug, info, warn, error)", s)
}

// Logger writes structured key=value lines at or above a minimum
// level. Safe for concurrent use; nil is a no-op.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time // test hook; nil means time.Now
}

// NewLogger returns a logger writing to w at min level and above.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// Enabled reports whether a record at l would be written.
func (lg *Logger) Enabled(l Level) bool {
	return lg != nil && l >= lg.min
}

// Log writes one record: a timestamp, the level, the message, then
// the key/value pairs in the order given (values are formatted with
// %v and quoted when they contain spaces or quotes). A trailing
// unpaired key gets the value "(missing)".
func (lg *Logger) Log(l Level, msg string, kv ...any) {
	if !lg.Enabled(l) {
		return
	}
	now := time.Now
	if lg.now != nil {
		now = lg.now
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(l.String())
	b.WriteString(" msg=")
	b.WriteString(logQuote(msg))
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprintf("%v", kv[i])
		val := "(missing)"
		if i+1 < len(kv) {
			val = fmt.Sprintf("%v", kv[i+1])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(logQuote(val))
	}
	b.WriteByte('\n')
	lg.mu.Lock()
	io.WriteString(lg.w, b.String())
	lg.mu.Unlock()
}

// Debug, Info, Warn and Error are Log at the corresponding level.
func (lg *Logger) Debug(msg string, kv ...any) { lg.Log(LevelDebug, msg, kv...) }
func (lg *Logger) Info(msg string, kv ...any)  { lg.Log(LevelInfo, msg, kv...) }
func (lg *Logger) Warn(msg string, kv ...any)  { lg.Log(LevelWarn, msg, kv...) }
func (lg *Logger) Error(msg string, kv ...any) { lg.Log(LevelError, msg, kv...) }

// logQuote quotes a value when it contains anything that would break
// key=value parsing; bare tokens pass through untouched.
func logQuote(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\n\"=\\") {
		return s
	}
	return strconv.Quote(s)
}

// defaultLogger is the process-wide sink shared by components that
// have no logger plumbed to them (runner.Warnf most prominently).
var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(NewLogger(os.Stderr, LevelInfo))
}

// Default returns the process-wide logger.
func Default() *Logger { return defaultLogger.Load() }

// SetDefault replaces the process-wide logger (nil silences it) and
// returns the previous one.
func SetDefault(lg *Logger) *Logger {
	prev := defaultLogger.Load()
	if lg == nil {
		lg = NewLogger(io.Discard, LevelError)
	}
	defaultLogger.Store(lg)
	return prev
}

// SortedAttrKeys returns a span attribute map's keys in sorted order,
// for deterministic rendering by exporters and reports.
func SortedAttrKeys(attrs map[string]string) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
