// Package obs is the evaluation harness's observability layer: an
// allocation-conscious metrics registry (counters, gauges, timing
// histograms with quantiles), lightweight spans for per-section wall
// time, and a run-manifest writer that records what configuration
// produced a set of results (see manifest.go).
//
// The package depends only on the standard library and the local
// stats helpers. Every method is safe for concurrent use and nil-safe:
// calls on a nil *Registry (and the nil instruments it hands out) are
// no-ops, so instrumented code needs no "is observability on?" guards
// and pays nothing but a nil check when it is off.
//
// Determinism contract: counters count discrete simulation events with
// uint64 addition, which is commutative, so their final values are
// independent of worker scheduling and GOMAXPROCS. Gauges, histograms
// and spans record wall-clock time and are inherently nondeterministic;
// the manifest keeps the two classes in separate sections so the
// deterministic one can be byte-compared across runs.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sdbp/internal/stats"
)

// Metric names the runner reports under (see package runner). They are
// defined here so the manifest assembly and the tests that reconcile
// runner behavior against the registry share one vocabulary.
const (
	// CtrJobsSubmitted counts jobs handed to runner.Run.
	CtrJobsSubmitted = "runner_jobs_submitted"
	// CtrJobsSucceeded counts jobs that executed and returned a value.
	CtrJobsSucceeded = "runner_jobs_succeeded"
	// CtrJobsFailed counts jobs that settled with an error (including
	// drained jobs that never ran because the context was cancelled).
	CtrJobsFailed = "runner_jobs_failed"
	// CtrJobsFromCheckpoint counts results restored from the journal
	// instead of being executed.
	CtrJobsFromCheckpoint = "runner_jobs_from_checkpoint"
	// CtrJobsDrained counts the subset of failed jobs that were drained
	// without executing.
	CtrJobsDrained = "runner_jobs_drained"
	// CtrJobRetries counts extra attempts after a retryable failure.
	CtrJobRetries = "runner_job_retries"
	// CtrJobTimeouts counts jobs abandoned at the per-job timeout.
	CtrJobTimeouts = "runner_job_timeouts"
	// CtrJobPanics counts jobs that settled via a recovered panic.
	CtrJobPanics = "runner_job_panics"
	// HistJobSeconds is the per-executed-job wall-time histogram.
	HistJobSeconds = "runner_job_seconds"
)

// SimPrefix marks counters that aggregate simulator state (cache.Stats
// sums, instructions retired, predictor verdicts). The manifest's
// deterministic section collects every counter with this prefix.
const SimPrefix = "sim_"

// Observable is implemented by job result types that can fold their
// aggregate simulator counters into a registry. The runner observes
// every live (non-checkpoint) successful result that implements it, so
// campaign-level counters accumulate at experiment boundaries instead
// of on the per-access hot path.
type Observable interface {
	ObserveInto(*Registry)
}

// Registry holds a run's metrics. The zero value is not usable; create
// one with NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterValue returns the named counter's current value without
// creating it (0 when absent or on a nil registry).
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histSampleCap bounds a histogram's retained samples: beyond it the
// count, sum and extrema stay exact but quantiles are computed over the
// first histSampleCap observations. Campaigns observe one duration per
// job (a few hundred per run), so the cap exists only as a memory
// guard against pathological callers.
const histSampleCap = 8192

// BucketBounds are the histogram's fixed upper bounds, in seconds,
// chosen to straddle the service's job latencies (sub-millisecond
// cached paths through multi-minute campaigns). The Prometheus
// exposition renders these as cumulative le buckets with an implicit
// +Inf equal to the total count.
var BucketBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 300,
}

// Histogram accumulates float64 observations (timings, in seconds, by
// convention) and reports count, sum, extrema, quantiles and fixed
// cumulative buckets. NaN and ±Inf observations are rejected (counted
// separately) rather than poisoning sum, extrema or quantiles.
type Histogram struct {
	mu       sync.Mutex
	count    uint64
	invalid  uint64
	sum      float64
	min, max float64
	samples  []float64
	buckets  [numBuckets]uint64
}

// numBuckets is len(BucketBounds), fixed so the per-histogram bucket
// array needs no allocation.
const numBuckets = 16

// Observe records one value. NaN and ±Inf are dropped (tallied as
// invalid). No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.invalid++
		h.mu.Unlock()
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, ub := range BucketBounds {
		if v <= ub {
			h.buckets[i]++
			break
		}
	}
	if len(h.samples) < histSampleCap {
		h.samples = append(h.samples, v)
	}
	h.mu.Unlock()
}

// Count returns the number of observations recorded (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the q-quantile (q in [0,1], clamped) of the retained
// samples by linear interpolation between order statistics: 0 for an
// empty histogram, the sample itself for a single observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	return quantile(sorted, q)
}

// quantile interpolates over an unsorted copy of samples.
func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sort.Float64s(samples)
	pos := q * float64(len(samples)-1)
	lo := int(pos)
	if lo == len(samples)-1 {
		return samples[lo]
	}
	frac := pos - float64(lo)
	return samples[lo]*(1-frac) + samples[lo+1]*frac
}

// Bucket is one cumulative histogram bucket: Count observations were
// <= UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramStats is a histogram's point-in-time summary, as serialized
// into the manifest's timing section.
type HistogramStats struct {
	// Count is the total number of valid observations (exact, even past
	// the sample cap).
	Count uint64 `json:"count"`
	// Invalid counts NaN/±Inf observations that were dropped.
	Invalid uint64 `json:"invalid,omitempty"`
	// Sum is the exact sum of all observations.
	Sum float64 `json:"sum"`
	// Min and Max are exact extrema.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Mean is Sum/Count (0 when empty).
	Mean float64 `json:"mean"`
	// CI95 is the half-width of the mean's 95% confidence interval
	// under a normal approximation, over the retained samples (0 for
	// fewer than two).
	CI95 float64 `json:"ci95"`
	// P50, P90 and P99 are interpolated quantiles over the retained
	// samples.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// Buckets are the cumulative fixed buckets (BucketBounds order);
	// the implicit +Inf bucket equals Count.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// stats summarizes the histogram under its lock.
func (h *Histogram) stats() HistogramStats {
	h.mu.Lock()
	s := HistogramStats{Count: h.count, Invalid: h.invalid, Sum: h.sum, Min: h.min, Max: h.max}
	var cum uint64
	for i, ub := range BucketBounds {
		cum += h.buckets[i]
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	_, s.CI95 = stats.MeanCI95(sorted)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// Snapshot is a consistent copy of every instrument in the registry.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
	Spans      []SpanRecord              `json:"spans"`
}

// Snapshot captures every counter, gauge, histogram and finished span.
// On a nil registry it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	s.Spans = append(s.Spans, r.spans...)
	r.mu.RUnlock()
	sortSpans(s.Spans)
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.stats()
	}
	return s
}
