package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fill populates a registry the way a campaign does: runner counters,
// sim counters, a timing histogram and a span.
func fill(r *Registry) {
	r.Counter(CtrJobsSubmitted).Add(10)
	r.Counter(CtrJobsSucceeded).Add(7)
	r.Counter(CtrJobsFailed).Add(2)
	r.Counter(CtrJobsFromCheckpoint).Add(1)
	r.Counter(CtrJobRetries).Add(3)
	r.Counter(CtrJobTimeouts).Add(1)
	r.Counter(CtrJobPanics).Add(1)
	r.Counter(SimPrefix + "llc_accesses").Add(1000)
	r.Counter(SimPrefix + "llc_hits").Add(600)
	r.Counter(SimPrefix + "llc_misses").Add(400)
	r.Histogram(HistJobSeconds).Observe(0.25)
	r.Histogram(HistJobSeconds).Observe(0.75)
	r.Gauge(SimPrefix + "accesses_per_sec").Set(123.5)
	sp := r.StartSpan("section:fig4")
	sp.End()
}

// TestManifestFillReconciles checks the registry→manifest mapping: the
// runner_* counters land in Sim.Jobs, every other counter in
// Sim.Counters, and nothing deterministic leaks into Timing (or vice
// versa).
func TestManifestFillReconciles(t *testing.T) {
	r := NewRegistry()
	fill(r)
	m := NewManifest("test")
	m.FillFromRegistry(r)

	want := JobCounts{Submitted: 10, Succeeded: 7, Failed: 2, FromCheckpoint: 1,
		Retries: 3, Timeouts: 1, Panics: 1}
	if m.Sim.Jobs != want {
		t.Errorf("Sim.Jobs = %+v, want %+v", m.Sim.Jobs, want)
	}
	if got := m.Sim.Counters[SimPrefix+"llc_accesses"]; got != 1000 {
		t.Errorf("sim counter = %d, want 1000", got)
	}
	if m.Sim.Counters[SimPrefix+"llc_hits"]+m.Sim.Counters[SimPrefix+"llc_misses"] !=
		m.Sim.Counters[SimPrefix+"llc_accesses"] {
		t.Error("hits+misses != accesses in the assembled manifest")
	}
	for name := range m.Sim.Counters {
		if len(name) >= 7 && name[:7] == "runner_" {
			t.Errorf("runner counter %q leaked into Sim.Counters", name)
		}
	}
	h, ok := m.Timing.Histograms[HistJobSeconds]
	if !ok || h.Count != 2 {
		t.Errorf("job-seconds histogram = %+v, want count 2", h)
	}
	if got := m.Timing.Gauges[SimPrefix+"accesses_per_sec"]; got != 123.5 {
		t.Errorf("gauge = %v, want 123.5", got)
	}
	if len(m.Timing.Sections) != 1 || m.Timing.Sections[0].Name != "section:fig4" {
		t.Errorf("sections = %+v, want the fig4 span", m.Timing.Sections)
	}
}

// TestManifestSimSectionDeterministic pins that marshaling the Sim
// section is byte-stable: two manifests assembled from identically
// counted registries produce identical sim bytes, regardless of the
// order the counters were touched in.
func TestManifestSimSectionDeterministic(t *testing.T) {
	build := func(reverse bool) []byte {
		r := NewRegistry()
		names := []string{"sim_a", "sim_b", "sim_c", "sim_d"}
		if reverse {
			for i := len(names) - 1; i >= 0; i-- {
				r.Counter(names[i]).Add(uint64(i + 1))
			}
		} else {
			for i, n := range names {
				r.Counter(n).Add(uint64(i + 1))
			}
		}
		m := NewManifest("test")
		m.Sim.Config["scale"] = "0.01"
		m.FillFromRegistry(r)
		b, err := json.Marshal(m.Sim)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := build(false), build(true); !bytes.Equal(a, b) {
		t.Errorf("sim sections differ by counter touch order:\n%s\n%s", a, b)
	}
}

// TestManifestSectionsStartOrder extends the determinism contract to
// spans: sections in the manifest follow span start order even when the
// spans end concurrently in arbitrary order (the snapshot sorts by
// start time, not append order).
func TestManifestSectionsStartOrder(t *testing.T) {
	r := NewRegistry()
	names := []string{"section:a", "section:b", "section:c", "section:d"}
	spans := make([]*Span, len(names))
	for i, n := range names {
		spans[i] = r.StartSpan(n)
		time.Sleep(200 * time.Microsecond)
	}
	done := make(chan struct{})
	for i := len(spans) - 1; i >= 0; i-- {
		go func(sp *Span) { sp.End(); done <- struct{}{} }(spans[i])
	}
	for range spans {
		<-done
	}
	m := NewManifest("test")
	m.FillFromRegistry(r)
	if len(m.Timing.Sections) != len(names) {
		t.Fatalf("sections = %+v, want %d", m.Timing.Sections, len(names))
	}
	for i, sec := range m.Timing.Sections {
		if sec.Name != names[i] {
			t.Errorf("section %d = %q, want %q (start order)", i, sec.Name, names[i])
		}
	}
}

// TestManifestBuildInfo checks the env section stamps the binary's
// module identity. Test binaries are built with module support, so
// the main module path must come through; the VCS fields are only
// present when the build embedded them, so they are not asserted.
func TestManifestBuildInfo(t *testing.T) {
	m := NewManifest("test")
	if m.Env.Module != "sdbp" {
		t.Errorf("Env.Module = %q, want sdbp", m.Env.Module)
	}
	if m.Env.ModVersion == "" {
		t.Error("Env.ModVersion empty; want a version (usually \"(devel)\")")
	}
	b, err := json.Marshal(m.Env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"module":"sdbp"`)) {
		t.Errorf("env JSON missing module stamp: %s", b)
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := NewRegistry()
	fill(r)
	m := NewManifest("test")
	m.Flags = map[string]string{"scale": "0.01"}
	m.FillFromRegistry(r)
	m.Timing.Started = time.Time{}.Format(time.RFC3339Nano)

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 || b[len(b)-1] != '\n' {
		t.Error("manifest file should end in a newline")
	}
	var back Manifest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Schema != ManifestSchema || back.Tool != "test" {
		t.Errorf("round-trip = schema %d tool %q", back.Schema, back.Tool)
	}
	if back.Sim.Jobs != m.Sim.Jobs {
		t.Errorf("jobs did not round-trip: %+v vs %+v", back.Sim.Jobs, m.Sim.Jobs)
	}
}
