package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot. Naming is stable and mechanical:
//
//   - counters expose as <name>_total with TYPE counter,
//   - gauges expose under their registry name with TYPE gauge,
//   - histograms expose as <name>_bucket{le="..."} cumulative buckets
//     (BucketBounds plus +Inf), <name>_sum and <name>_count, with TYPE
//     histogram.
//
// Families are emitted in sorted name order and every value renders
// via strconv, so the output is a deterministic function of the
// snapshot. LintPrometheus is the matching hand-rolled grammar check;
// WritePrometheus output must always pass it (test-pinned).

// ContentTypePrometheus is the content type of the text exposition.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with every illegal byte replaced by
// '_' and a leading digit prefixed.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if legal {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. The output is deterministic: families sort by exposition
// name, buckets by upper bound.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Cumulative count of %s events.\n", n, name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		fmt.Fprintf(bw, "%s %d\n", n, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(bw, "# HELP %s Last observed value of %s.\n", n, name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		fmt.Fprintf(bw, "%s %s\n", n, promFloat(snap.Gauges[name]))
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := promName(name)
		fmt.Fprintf(bw, "# HELP %s Distribution of %s.\n", n, name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, promFloat(b.UpperBound), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}

	return bw.Flush()
}

// LintPrometheus validates Prometheus text exposition grammar and the
// structural invariants a scraper relies on:
//
//   - every line is a sample, a "# HELP"/"# TYPE" comment, or blank;
//   - metric and label names match the legal charset, values parse;
//   - a family's TYPE comment precedes its samples, at most one per
//     family, and a family's lines are contiguous;
//   - histogram buckets have parseable le labels in strictly
//     increasing order with nondecreasing cumulative counts, end at
//     +Inf, and the +Inf bucket equals <name>_count;
//   - no duplicate sample (name plus label set).
//
// It is the CI/test gate for /metrics output.
func LintPrometheus(data []byte) error {
	types := map[string]string{}   // family -> declared type
	lastFamily := ""               // for contiguity
	closedFamilies := map[string]bool{}
	seenSamples := map[string]bool{}
	type histState struct {
		lastLE    float64
		lastCount uint64
		sawInf    bool
		infCount  uint64
		count     *uint64
	}
	hists := map[string]*histState{}

	for lineNo, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, err := parsePromComment(line)
			if err != nil {
				return fmt.Errorf("promlint: line %d: %w", lineNo, err)
			}
			if kind == "TYPE" {
				if _, dup := types[name]; dup {
					return fmt.Errorf("promlint: line %d: duplicate TYPE for %s", lineNo, name)
				}
				if closedFamilies[name] {
					return fmt.Errorf("promlint: line %d: TYPE for %s after its samples", lineNo, name)
				}
				types[name] = typeOfComment(line)
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("promlint: line %d: %w", lineNo, err)
		}
		family := familyOf(name)
		if _, ok := types[family]; !ok {
			return fmt.Errorf("promlint: line %d: sample %s before a TYPE comment for %s", lineNo, name, family)
		}
		if family != lastFamily {
			if lastFamily != "" {
				closedFamilies[lastFamily] = true
			}
			if closedFamilies[family] {
				return fmt.Errorf("promlint: line %d: family %s is not contiguous", lineNo, family)
			}
			lastFamily = family
		}
		sampleKey := name + "{" + labels + "}"
		if seenSamples[sampleKey] {
			return fmt.Errorf("promlint: line %d: duplicate sample %s", lineNo, sampleKey)
		}
		seenSamples[sampleKey] = true

		if types[family] == "histogram" {
			hs := hists[family]
			if hs == nil {
				hs = &histState{lastLE: math.Inf(-1)}
				hists[family] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, err := leOf(labels)
				if err != nil {
					return fmt.Errorf("promlint: line %d: %w", lineNo, err)
				}
				if hs.sawInf {
					return fmt.Errorf("promlint: line %d: bucket after le=\"+Inf\" in %s", lineNo, family)
				}
				if !(le > hs.lastLE) {
					return fmt.Errorf("promlint: line %d: %s buckets not in increasing le order", lineNo, family)
				}
				cum := uint64(value)
				if value < 0 || float64(cum) != value {
					return fmt.Errorf("promlint: line %d: bucket count %v is not a non-negative integer", lineNo, value)
				}
				if cum < hs.lastCount {
					return fmt.Errorf("promlint: line %d: %s cumulative bucket counts decreased", lineNo, family)
				}
				hs.lastLE, hs.lastCount = le, cum
				if math.IsInf(le, 1) {
					hs.sawInf = true
					hs.infCount = cum
				}
			case strings.HasSuffix(name, "_count"):
				c := uint64(value)
				hs.count = &c
			}
		}
	}
	for family, hs := range hists {
		if !hs.sawInf {
			return fmt.Errorf("promlint: histogram %s has no le=\"+Inf\" bucket", family)
		}
		if hs.count == nil {
			return fmt.Errorf("promlint: histogram %s has no _count sample", family)
		}
		if *hs.count != hs.infCount {
			return fmt.Errorf("promlint: histogram %s: +Inf bucket %d != count %d", family, hs.infCount, *hs.count)
		}
	}
	return nil
}

// familyOf maps a sample name to its family: histogram samples share
// the family of their base name.
func familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c == ':':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parsePromComment validates a "# HELP name text" or "# TYPE name
// kind" line and returns the comment kind and metric name.
func parsePromComment(line string) (kind, name string, err error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	name = fields[2]
	switch kind {
	case "HELP":
		// free text follows
	case "TYPE":
		if len(fields) != 4 {
			return "", "", fmt.Errorf("TYPE comment %q needs exactly a name and a type", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", fmt.Errorf("unknown metric type %q", fields[3])
		}
	default:
		return "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	if !validMetricName(name) {
		return "", "", fmt.Errorf("illegal metric name %q", name)
	}
	return kind, name, nil
}

func typeOfComment(line string) string {
	fields := strings.Fields(line)
	return fields[len(fields)-1]
}

// parsePromSample validates one sample line: name{labels} value, with
// the label set optional. Timestamps (a trailing integer) are not
// emitted by this package and are rejected.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return "", "", 0, fmt.Errorf("sample %q has no value", line)
	}
	if brace >= 0 && brace < sp {
		name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return "", "", 0, fmt.Errorf("sample %q has an unterminated label set", line)
		}
		labels = rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		if err := validateLabels(labels); err != nil {
			return "", "", 0, fmt.Errorf("sample %q: %w", line, err)
		}
	} else {
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("illegal metric name %q", name)
	}
	if strings.ContainsAny(rest, " \t") {
		return "", "", 0, fmt.Errorf("sample %q has trailing fields", line)
	}
	value, err = parsePromValue(rest)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %q: %w", line, err)
	}
	return name, labels, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	return v, nil
}

// validateLabels checks a comma-separated name="value" list.
func validateLabels(labels string) error {
	if labels == "" {
		return nil
	}
	for _, pair := range strings.Split(labels, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label %q is not name=\"value\"", pair)
		}
		lname, lval := pair[:eq], pair[eq+1:]
		if !validMetricName(lname) || strings.Contains(lname, ":") {
			return fmt.Errorf("illegal label name %q", lname)
		}
		if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
			return fmt.Errorf("label value %s is not quoted", lval)
		}
	}
	return nil
}

// leOf extracts the le label from a bucket's label set.
func leOf(labels string) (float64, error) {
	for _, pair := range strings.Split(labels, ",") {
		if !strings.HasPrefix(pair, "le=") {
			continue
		}
		raw := strings.TrimPrefix(pair, "le=")
		unq, err := strconv.Unquote(raw)
		if err != nil {
			return 0, fmt.Errorf("bucket le label %s does not unquote: %w", raw, err)
		}
		return parsePromValue(unq)
	}
	return 0, fmt.Errorf("bucket sample without an le label {%s}", labels)
}
