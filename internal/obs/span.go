package obs

import "time"

// SpanRecord is one finished span: a named stretch of wall time, used
// for per-section and per-figure timing in the manifest.
type SpanRecord struct {
	// Name identifies the span (e.g. "section:fig4").
	Name string `json:"name"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is the span's wall time.
	Duration time.Duration `json:"duration"`
}

// Span is an in-flight timing measurement. End it exactly once.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan begins a named span. On a nil registry it returns nil,
// whose End is a no-op.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: time.Now()}
}

// End finishes the span, records it in the registry, and returns its
// duration (0 on nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, SpanRecord{Name: s.name, Start: s.start, Duration: d})
	s.r.mu.Unlock()
	return d
}

// Spans returns the finished spans in End order (nil on a nil
// registry).
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]SpanRecord(nil), r.spans...)
}
