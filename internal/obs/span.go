package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span: a named stretch of wall time. Plain
// registry spans (per-section timing in the manifest) carry only Name,
// Start and Duration; spans belonging to a Trace additionally carry
// the trace ID, their own span ID, their parent's span ID and any
// attributes, so a trace reconstructs into a tree.
type SpanRecord struct {
	// Name identifies the span (e.g. "section:fig4", "stage:decode").
	Name string `json:"name"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is the span's wall time.
	Duration time.Duration `json:"duration"`
	// TraceID groups the spans of one trace; empty for plain registry
	// spans.
	TraceID string `json:"trace_id,omitempty"`
	// ID is this span's identifier within its trace.
	ID string `json:"id,omitempty"`
	// Parent is the enclosing span's ID; empty for a trace's root.
	Parent string `json:"parent,omitempty"`
	// Attrs are free-form annotations (retry counts, batch sizes,
	// error summaries). Map keys serialize sorted, so a record's JSON
	// form is stable.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is an in-flight timing measurement. End it exactly once. A span
// belongs either to a Registry (StartSpan) or to a Trace (NewTrace /
// StartChild); a nil *Span is a no-op everywhere.
type Span struct {
	r     *Registry
	tr    *Trace
	name  string
	id    string
	paren string
	start time.Time
	attrs map[string]string
}

// StartSpan begins a named registry span. On a nil registry it returns
// nil, whose every method is a no-op.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: time.Now()}
}

// SetAttr annotates the span. Attributes must be set by the goroutine
// that owns the span before End; they are not synchronized. No-op on
// nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// StartChild begins a child span sharing the receiver's trace. On a
// nil or non-trace span it returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return &Span{
		tr:    s.tr,
		name:  name,
		id:    nextSpanID(),
		paren: s.id,
		start: time.Now(),
	}
}

// End finishes the span, records it in its registry or trace, and
// returns its duration (0 on nil). Ending a span twice records it
// twice; don't.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	rec := SpanRecord{
		Name: s.name, Start: s.start, Duration: d,
		ID: s.id, Parent: s.paren, Attrs: s.attrs,
	}
	switch {
	case s.tr != nil:
		rec.TraceID = s.tr.id
		s.tr.record(rec)
	case s.r != nil:
		s.r.mu.Lock()
		s.r.spans = append(s.r.spans, rec)
		s.r.mu.Unlock()
	}
	return d
}

// Spans returns the finished registry spans sorted by start time (ties
// broken by name), so the order is a function of when work began, not
// of which goroutine's End raced in first. Nil on a nil registry.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := append([]SpanRecord(nil), r.spans...)
	r.mu.RUnlock()
	sortSpans(out)
	return out
}

// sortSpans orders span records deterministically: by start time, then
// name, then span ID. Concurrent End calls append in scheduler order;
// sorting at read time keeps snapshots (and the manifests built from
// them) byte-comparable across GOMAXPROCS settings.
func sortSpans(spans []SpanRecord) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.ID < b.ID
	})
}

// spanIDs numbers every trace and span in the process; IDs only need
// to be unique, not meaningful, so a cheap global counter does.
var spanIDs atomic.Uint64

func nextSpanID() string {
	return strconv.FormatUint(spanIDs.Add(1), 16)
}

// Trace is one hierarchical collection of spans — a job's journey
// through a pipeline. Traces are self-contained (they do not
// accumulate in a registry), so a long-running service can keep a
// bounded window of them without unbounded growth. All methods are
// safe for concurrent use and on a nil receiver.
type Trace struct {
	mu    sync.Mutex
	id    string
	spans []SpanRecord
}

// NewTrace starts a trace and returns it together with its root span.
// Children branch off the root (or any other span) via StartChild.
func NewTrace(rootName string) (*Trace, *Span) {
	t := &Trace{id: "t" + nextSpanID()}
	root := &Span{
		tr:    t,
		name:  rootName,
		id:    nextSpanID(),
		start: time.Now(),
	}
	return t, root
}

// ID returns the trace's identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

func (t *Trace) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Spans returns the trace's finished spans sorted deterministically by
// start time (see sortSpans). A trace read mid-flight returns whatever
// has ended so far; nil receiver returns nil.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}
