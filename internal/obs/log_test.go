package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedLogger(buf *bytes.Buffer, min Level) *Logger {
	lg := NewLogger(buf, min)
	lg.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	return lg
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := fixedLogger(&buf, LevelDebug)
	lg.Warn("torn journal tail", "component", "runner", "lines", 3, "path", "a b.ckpt")
	got := buf.String()
	want := `ts=2026-08-08T12:00:00.000Z level=warn msg="torn journal tail" component=runner lines=3 path="a b.ckpt"` + "\n"
	if got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := fixedLogger(&buf, LevelWarn)
	lg.Debug("d")
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("filtered output = %q", buf.String())
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelError) {
		t.Error("Enabled disagrees with the min level")
	}
}

func TestLoggerOddKV(t *testing.T) {
	var buf bytes.Buffer
	fixedLogger(&buf, LevelDebug).Info("m", "key")
	if !strings.Contains(buf.String(), "key=(missing)") {
		t.Errorf("odd kv line = %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	lg.Info("nothing happens")
	lg.Log(LevelError, "still nothing")
	if lg.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, " WARN ": LevelWarn,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestDefaultLoggerSwap(t *testing.T) {
	var buf bytes.Buffer
	prev := SetDefault(fixedLogger(&buf, LevelInfo))
	defer SetDefault(prev)
	Default().Warn("hello", "k", "v")
	if !strings.Contains(buf.String(), `msg=hello k=v`) {
		t.Errorf("default logger line = %q", buf.String())
	}
	// SetDefault(nil) silences instead of crashing later users.
	SetDefault(nil)
	Default().Error("dropped")
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	lg := fixedLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				lg.Info("tick", "j", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "ts=") || !strings.Contains(l, "msg=tick") {
			t.Fatalf("interleaved line %q", l)
		}
	}
}
