package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter did not return the same instance on re-lookup")
	}
	if got := r.CounterValue("c"); got != 42 {
		t.Errorf("CounterValue = %d, want 42", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Errorf("CounterValue(absent) = %d, want 0", got)
	}
	if _, ok := r.Snapshot().Counters["absent"]; ok {
		t.Error("CounterValue created the counter it looked up")
	}

	g := r.Gauge("g")
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	g.Set(-2)
	if got := r.Gauge("g").Value(); got != -2 {
		t.Errorf("gauge after reset = %v, want -2", got)
	}
}

// TestHistogramReconciliation pins the satellite contract: the
// histogram's count equals the observations recorded, exactly, even
// past the retained-sample cap, and sum/extrema stay exact.
func TestHistogramReconciliation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	const n = histSampleCap + 500
	var sum float64
	for i := 0; i < n; i++ {
		v := float64(i%100) + 1
		h.Observe(v)
		sum += v
	}
	if got := h.Count(); got != n {
		t.Errorf("Count = %d, want %d observations", got, n)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != n {
		t.Errorf("snapshot count = %d, want %d", s.Count, n)
	}
	if !almost(s.Sum, sum) {
		t.Errorf("snapshot sum = %v, want %v", s.Sum, sum)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("extrema = [%v, %v], want [1, 100]", s.Min, s.Max)
	}
}

// TestHistogramQuantiles is the table-driven quantile contract,
// including the edge cases the manifest can hit: empty histogram,
// single sample, all-equal samples.
func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{"empty p50", nil, 0.5, 0},
		{"empty p99", nil, 0.99, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 0.5, 7},
		{"single p100", []float64{7}, 1, 7},
		{"all equal p50", []float64{3, 3, 3, 3}, 0.5, 3},
		{"all equal p99", []float64{3, 3, 3, 3}, 0.99, 3},
		{"two samples p50", []float64{1, 3}, 0.5, 2},
		{"uniform p0", []float64{4, 1, 3, 2, 5}, 0, 1},
		{"uniform p25", []float64{4, 1, 3, 2, 5}, 0.25, 2},
		{"uniform p50", []float64{4, 1, 3, 2, 5}, 0.5, 3},
		{"uniform p100", []float64{4, 1, 3, 2, 5}, 1, 5},
		{"clamp below", []float64{1, 2}, -0.5, 1},
		{"clamp above", []float64{1, 2}, 1.5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewRegistry().Histogram("h")
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); !almost(got, tc.want) {
				t.Errorf("Quantile(%v) over %v = %v, want %v", tc.q, tc.samples, got, tc.want)
			}
		})
	}
}

func TestHistogramStatsEdgeCases(t *testing.T) {
	r := NewRegistry()
	empty := r.Snapshot() // no histograms yet
	if len(empty.Histograms) != 0 {
		t.Fatalf("unexpected histograms: %v", empty.Histograms)
	}

	r.Histogram("zero") // created but never observed
	s := r.Snapshot().Histograms["zero"]
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.CI95 != 0 {
		t.Errorf("empty histogram stats = %+v, want all zero", s)
	}

	r.Histogram("one").Observe(2.5)
	s = r.Snapshot().Histograms["one"]
	if s.Count != 1 || s.Mean != 2.5 || s.P50 != 2.5 || s.P99 != 2.5 || s.CI95 != 0 {
		t.Errorf("single-sample stats = %+v", s)
	}

	for i := 0; i < 10; i++ {
		r.Histogram("flat").Observe(4)
	}
	s = r.Snapshot().Histograms["flat"]
	if s.Mean != 4 || s.P50 != 4 || s.P90 != 4 || s.CI95 != 0 {
		t.Errorf("all-equal stats = %+v", s)
	}
}

// TestHistogramInvalidObservations is the satellite contract: NaN and
// ±Inf observations must not panic and must not poison count, sum,
// extrema or quantiles — they are dropped and tallied separately.
func TestHistogramInvalidObservations(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		count   uint64
		invalid uint64
		min     float64
		max     float64
		sum     float64
	}{
		{"only NaN", []float64{math.NaN()}, 0, 1, 0, 0, 0},
		{"only +Inf", []float64{math.Inf(1)}, 0, 1, 0, 0, 0},
		{"only -Inf", []float64{math.Inf(-1)}, 0, 1, 0, 0, 0},
		{"NaN before valid", []float64{math.NaN(), 2, 4}, 2, 1, 2, 4, 6},
		{"Inf between valid", []float64{3, math.Inf(1), 1, math.Inf(-1)}, 2, 2, 1, 3, 4},
		{"all invalid", []float64{math.NaN(), math.Inf(1), math.Inf(-1)}, 0, 3, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("h")
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if got := h.Count(); got != tc.count {
				t.Errorf("Count = %d, want %d", got, tc.count)
			}
			s := r.Snapshot().Histograms["h"]
			if s.Count != tc.count || s.Invalid != tc.invalid {
				t.Errorf("count/invalid = %d/%d, want %d/%d", s.Count, s.Invalid, tc.count, tc.invalid)
			}
			if s.Min != tc.min || s.Max != tc.max || !almost(s.Sum, tc.sum) {
				t.Errorf("min/max/sum = %v/%v/%v, want %v/%v/%v",
					s.Min, s.Max, s.Sum, tc.min, tc.max, tc.sum)
			}
			if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) ||
				math.IsNaN(s.P99) || math.IsInf(s.P99, 0) {
				t.Errorf("derived stats poisoned: %+v", s)
			}
		})
	}
}

// TestHistogramBuckets pins the cumulative-bucket shape the Prometheus
// exposition depends on: bounds in BucketBounds order, nondecreasing
// counts, and an implicit +Inf bucket equal to Count.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.3, 2, 1000} {
		h.Observe(v) // 1000 is beyond the largest bound: only in +Inf
	}
	h.Observe(math.NaN()) // must not land in any bucket
	s := r.Snapshot().Histograms["h"]
	if len(s.Buckets) != len(BucketBounds) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(BucketBounds))
	}
	want := map[float64]uint64{0.001: 1, 0.0025: 3, 0.5: 4, 2.5: 5, 300: 5}
	prev := uint64(0)
	for i, b := range s.Buckets {
		if b.UpperBound != BucketBounds[i] {
			t.Errorf("bucket %d bound = %v, want %v", i, b.UpperBound, BucketBounds[i])
		}
		if b.Count < prev {
			t.Errorf("bucket %v count %d < previous %d (not cumulative)", b.UpperBound, b.Count, prev)
		}
		prev = b.Count
		if w, ok := want[b.UpperBound]; ok && b.Count != w {
			t.Errorf("bucket le=%v count = %d, want %d", b.UpperBound, b.Count, w)
		}
	}
	// Last finite bucket excludes the 1000s outlier; Count includes it.
	if last := s.Buckets[len(s.Buckets)-1].Count; last != 5 || s.Count != 6 {
		t.Errorf("last bucket %d / count %d, want 5 / 6 (+Inf holds the outlier)", last, s.Count)
	}
	// An empty histogram still reports the full (all-zero) bucket list.
	r.Histogram("empty")
	es := r.Snapshot().Histograms["empty"]
	if len(es.Buckets) != len(BucketBounds) || es.Buckets[len(es.Buckets)-1].Count != 0 {
		t.Errorf("empty histogram buckets = %+v", es.Buckets)
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("section:test")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Errorf("span duration = %v, want > 0", d)
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "section:test" || spans[0].Duration != d {
		t.Errorf("Spans() = %+v, want one %q span of %v", spans, "section:test", d)
	}
}

// TestNilRegistryIsNoOp pins the nil-safety contract instrumented code
// relies on: a disabled registry must never panic or record.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	if r.Counter("c").Value() != 0 {
		t.Error("nil counter recorded a value")
	}
	if r.CounterValue("c") != 0 {
		t.Error("nil CounterValue non-zero")
	}
	r.Gauge("g").Set(1)
	if r.Gauge("g").Value() != 0 {
		t.Error("nil gauge recorded a value")
	}
	r.Histogram("h").Observe(1)
	if r.Histogram("h").Count() != 0 || r.Histogram("h").Quantile(0.5) != 0 {
		t.Error("nil histogram recorded a value")
	}
	if r.StartSpan("s").End() != 0 {
		t.Error("nil span returned nonzero duration")
	}
	if r.Spans() != nil {
		t.Error("nil Spans() non-nil")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// the shared-mutable-structure race smoke the CI -race step runs —
// and then reconciles the exact totals.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(1)
				r.StartSpan("s").End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := len(r.Spans()); got != workers*perWorker {
		t.Errorf("spans = %d, want %d", got, workers*perWorker)
	}
}
