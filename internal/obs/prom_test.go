package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// promSnapshot builds a registry exercising every instrument kind and
// returns its snapshot.
func promSnapshot() Snapshot {
	r := NewRegistry()
	r.Counter("serve_http_requests").Add(17)
	r.Counter("sim_llc_accesses").Add(123456)
	r.Gauge("serve_queue_depth").Set(3)
	r.Gauge("weird-name!").Set(-1.5)
	h := r.Histogram("runner_job_seconds")
	for _, v := range []float64{0.0004, 0.003, 0.003, 0.7, 42} {
		h.Observe(v)
	}
	return r.Snapshot()
}

// TestWritePrometheusLints pins the central contract: whatever the
// encoder emits, the hand-rolled lint accepts.
func TestWritePrometheusLints(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("encoder output fails its own lint: %v\n%s", err, buf.String())
	}
}

// TestWritePrometheusShape checks naming conventions and histogram
// structure in the rendered text.
func TestWritePrometheusShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_http_requests_total counter",
		"serve_http_requests_total 17",
		"# TYPE serve_queue_depth gauge",
		"serve_queue_depth 3",
		"weird_name_ -1.5", // sanitized
		"# TYPE runner_job_seconds histogram",
		`runner_job_seconds_bucket{le="0.001"} 1`,
		`runner_job_seconds_bucket{le="0.005"} 3`,
		`runner_job_seconds_bucket{le="+Inf"} 5`,
		"runner_job_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output: re-encoding the same snapshot is
	// byte-identical.
	var again bytes.Buffer
	WritePrometheus(&again, promSnapshot())
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two encodings of the same registry shape differ")
	}
}

// TestLintRejections drives the lint with broken documents; each must
// fail, and each failure message should name the problem.
func TestLintRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"sample before TYPE", "foo 1\n"},
		{"bad metric name", "# TYPE 9foo counter\n9foo_total 1\n"},
		{"bad value", "# TYPE foo counter\nfoo nope\n"},
		{"duplicate sample", "# TYPE foo gauge\nfoo 1\nfoo 2\n"},
		{"duplicate TYPE", "# TYPE foo gauge\n# TYPE foo gauge\nfoo 1\n"},
		{"unknown type", "# TYPE foo banana\nfoo 1\n"},
		{"non-contiguous family", "# TYPE a gauge\n# TYPE b gauge\na 1\nb 1\na 2\n"},
		{"unterminated labels", "# TYPE foo gauge\nfoo{le=\"1\" 1\n"},
		{"unquoted label value", "# TYPE foo gauge\nfoo{x=1} 1\n"},
		{"bucket le out of order",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"},
		{"bucket counts decrease",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"no +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"Inf bucket != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n"},
		{"missing count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n"},
		{"bucket without le",
			"# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"trailing fields", "# TYPE foo gauge\nfoo 1 2 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := LintPrometheus([]byte(tc.doc)); err == nil {
				t.Errorf("lint accepted broken document:\n%s", tc.doc)
			}
		})
	}
}

// TestLintAcceptsHandWritten: a well-formed hand-written document with
// labels and special values passes.
func TestLintAcceptsHandWritten(t *testing.T) {
	doc := `# HELP up Whether the scrape worked.
# TYPE up gauge
up 1
# TYPE temp gauge
temp{site="lab",unit="c"} -3.5
# TYPE h histogram
h_bucket{le="0.1"} 0
h_bucket{le="+Inf"} 4
h_sum 12.5
h_count 4
`
	if err := LintPrometheus([]byte(doc)); err != nil {
		t.Fatalf("lint rejected a valid document: %v", err)
	}
}

func TestPromFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{1.5, "1.5"}, {0, "0"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
	} {
		if got := promFloat(tc.v); got != tc.want {
			t.Errorf("promFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if promFloat(math.NaN()) != "NaN" {
		t.Error("NaN not spelled out")
	}
}

func TestPromNameSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"ok_name", "ok_name"},
		{"9lead", "_9lead"},
		{"dash-dot.x", "dash_dot_x"},
		{"", "_"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
