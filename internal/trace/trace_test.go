package trace

import (
	"testing"
	"testing/quick"

	"sdbp/internal/mem"
)

func TestRegionAddr(t *testing.T) {
	r := Region{Base: 0x1000, Blocks: 4}
	if got := r.Addr(0, 0); got != 0x1000 {
		t.Errorf("Addr(0,0) = %#x", got)
	}
	if got := r.Addr(1, 8); got != 0x1000+64+8 {
		t.Errorf("Addr(1,8) = %#x", got)
	}
	// Index wraps modulo the region.
	if got := r.Addr(5, 0); got != r.Addr(1, 0) {
		t.Error("Addr index did not wrap")
	}
	if got := r.Addr(-1, 0); got != r.Addr(3, 0) {
		t.Error("negative index did not wrap")
	}
	// Offsets stay within the block.
	if got := r.Addr(0, 64); got != 0x1000 {
		t.Errorf("offset 64 escaped the block: %#x", got)
	}
}

func TestProgramLengthAndReset(t *testing.T) {
	k := &HotSet{Region: Region{Base: 0, Blocks: 16}, PCBase: 0x10, GapMean: 2}
	p := NewProgram(k, 100, 1)
	first := Collect(p)
	if len(first) != 100 {
		t.Fatalf("collected %d accesses, want 100", len(first))
	}
	p.Reset()
	second := Collect(p)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("stream not reproducible at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestProgramSeedsChangeStream(t *testing.T) {
	mk := func(seed uint64) []mem.Access {
		k := &RandomAccess{Region: Region{Blocks: 1024}, PCCount: 16, PCBase: 0x10}
		return Collect(NewProgram(k, 200, seed))
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamSequentialSweep(t *testing.T) {
	k := &Stream{Region: Region{Base: 0, Blocks: 8}, PCBase: 0x100}
	r := mem.NewRand(1)
	k.Reset(r)
	for lap := 0; lap < 2; lap++ {
		for i := 0; i < 8; i++ {
			a := k.Step(r)
			if mem.BlockNumber(a.Addr) != uint64(i) {
				t.Fatalf("lap %d pos %d: block %d", lap, i, mem.BlockNumber(a.Addr))
			}
			if a.PC != 0x100 {
				t.Fatalf("lead PC = %#x", a.PC)
			}
		}
	}
}

func TestStreamBurstSharesBlock(t *testing.T) {
	k := &Stream{Region: Region{Base: 0, Blocks: 8}, Burst: 3, PCBase: 0x100}
	r := mem.NewRand(1)
	k.Reset(r)
	a1, a2, a3 := k.Step(r), k.Step(r), k.Step(r)
	if mem.BlockAddr(a1.Addr) != mem.BlockAddr(a2.Addr) || mem.BlockAddr(a2.Addr) != mem.BlockAddr(a3.Addr) {
		t.Error("burst accesses span blocks")
	}
	a4 := k.Step(r)
	if mem.BlockAddr(a4.Addr) == mem.BlockAddr(a1.Addr) {
		t.Error("burst did not advance to the next block")
	}
}

func TestStreamLagVisit(t *testing.T) {
	const lag = 4
	k := &Stream{Region: Region{Base: 0, Blocks: 64}, Lag: lag, WriteLag: true, PCBase: 0x100}
	r := mem.NewRand(1)
	k.Reset(r)
	var leads, lags []uint64
	for i := 0; i < 40; i++ {
		a := k.Step(r)
		if a.PC == 0x100+0x400 {
			if !a.Write {
				t.Fatal("lag visit not a store")
			}
			lags = append(lags, mem.BlockNumber(a.Addr))
		} else {
			leads = append(leads, mem.BlockNumber(a.Addr))
		}
	}
	if len(lags) == 0 {
		t.Fatal("no lag visits emitted")
	}
	// Each lag visit trails its lead by exactly lag blocks.
	for i, lb := range lags {
		if want := leads[i] - lag; lb != want && leads[i] >= lag {
			t.Fatalf("lag visit %d: block %d, want %d", i, lb, want)
		}
	}
}

func TestStreamLagProb(t *testing.T) {
	k := &Stream{Region: Region{Base: 0, Blocks: 1024}, Lag: 8, LagProb: 0.5, PCBase: 0x100}
	r := mem.NewRand(3)
	k.Reset(r)
	lagCount, leadCount := 0, 0
	for i := 0; i < 3000; i++ {
		a := k.Step(r)
		if a.PC == 0x100+0x400 {
			lagCount++
		} else {
			leadCount++
		}
	}
	frac := float64(lagCount) / float64(leadCount)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("lag fraction = %.2f, want ~0.5", frac)
	}
}

func TestGenerationalPassStructure(t *testing.T) {
	k := &Generational{
		Region: Region{Base: 0, Blocks: 8}, SegBlocks: 4,
		MinUses: 1, MaxUses: 1, PCBase: 0x1000,
	}
	r := mem.NewRand(1)
	k.Reset(r)
	// Deterministic probs: passes are setup, use1, final over segment 0
	// then segment 1.
	wantPCs := []uint64{0x1000, 0x1000 + 0x108, 0x1000 + 0x800}
	for seg := 0; seg < 2; seg++ {
		for p, pc := range wantPCs {
			for b := 0; b < 4; b++ {
				a := k.Step(r)
				if a.PC != pc {
					t.Fatalf("seg %d pass %d block %d: PC %#x, want %#x", seg, p, b, a.PC, pc)
				}
				if want := uint64(seg*4 + b); mem.BlockNumber(a.Addr) != want {
					t.Fatalf("block %d, want %d", mem.BlockNumber(a.Addr), want)
				}
				if (p == 0) != a.Write {
					t.Fatalf("pass %d write flag %v", p, a.Write)
				}
			}
		}
	}
}

func TestGenerationalUseProbSkips(t *testing.T) {
	k := &Generational{
		Region: Region{Base: 0, Blocks: 4096}, SegBlocks: 4096,
		MinUses: 1, MaxUses: 1, UseProb: 0.5, PCBase: 0x1000,
	}
	r := mem.NewRand(9)
	k.Reset(r)
	counts := map[uint64]int{} // PC -> touches
	for i := 0; i < 3*4096; i++ {
		counts[k.Step(r).PC]++
	}
	setup, use := counts[0x1000], counts[0x1000+0x108]
	if use < setup/3 || use > 2*setup/3 {
		t.Errorf("use touches %d vs setup %d; want about half", use, setup)
	}
}

func TestGenerationalFreshAddresses(t *testing.T) {
	k := &Generational{
		Region: Region{Base: 0x10000, Blocks: 4}, SegBlocks: 4,
		MinUses: 0, MaxUses: 0, Fresh: true, PCBase: 0x1000,
	}
	r := mem.NewRand(1)
	k.Reset(r)
	seen := map[uint64]int{}
	for i := 0; i < 32; i++ { // 4 epochs of (setup+final) x 4 blocks
		seen[mem.BlockNumber(k.Step(r).Addr)]++
	}
	// Fresh mode: each epoch's blocks are new, so every block number is
	// touched exactly twice (setup + final), never across epochs.
	for b, n := range seen {
		if n != 2 {
			t.Errorf("block %d touched %d times; fresh epochs must not reuse addresses", b, n)
		}
	}
	if len(seen) != 16 {
		t.Errorf("distinct blocks = %d, want 16", len(seen))
	}
}

func TestGenerationalRefitReusesAddresses(t *testing.T) {
	k := &Generational{
		Region: Region{Base: 0x10000, Blocks: 4}, SegBlocks: 4,
		MinUses: 0, MaxUses: 0, PCBase: 0x1000,
	}
	r := mem.NewRand(1)
	k.Reset(r)
	seen := map[uint64]int{}
	for i := 0; i < 32; i++ {
		seen[mem.BlockNumber(k.Step(r).Addr)]++
	}
	if len(seen) != 4 {
		t.Errorf("distinct blocks = %d, want 4 (refit reuses the region)", len(seen))
	}
}

func TestPointerChaseSingleCycle(t *testing.T) {
	const n = 64
	k := &PointerChase{Region: Region{Base: 0, Blocks: n}, PCCount: 4, PCBase: 0x2000}
	r := mem.NewRand(1)
	k.Reset(r)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		a := k.Step(r)
		if !a.DependentLoad {
			t.Fatal("chase access not marked dependent")
		}
		b := mem.BlockNumber(a.Addr)
		if seen[b] {
			t.Fatalf("block %d revisited before the cycle completed", b)
		}
		seen[b] = true
	}
	if len(seen) != n {
		t.Errorf("cycle covered %d of %d nodes", len(seen), n)
	}
}

func TestRepeatFactor(t *testing.T) {
	inner := &HotSet{Region: Region{Base: 0, Blocks: 8}, PCBase: 0x10}
	k := &Repeat{Kernel: inner, Factor: 3}
	r := mem.NewRand(1)
	k.Reset(r)
	for b := 0; b < 8; b++ {
		first := k.Step(r)
		for rep := 1; rep < 3; rep++ {
			a := k.Step(r)
			if mem.BlockAddr(a.Addr) != mem.BlockAddr(first.Addr) {
				t.Fatalf("repeat %d left the block", rep)
			}
			if a.DependentLoad {
				t.Fatal("repeat marked dependent")
			}
		}
	}
}

func TestMixWeights(t *testing.T) {
	a := &HotSet{Region: Region{Base: 0, Blocks: 4}, PCBase: 0x1000}
	b := &HotSet{Region: Region{Base: 1 << 32, Blocks: 4}, PCBase: 0x2000}
	m := NewMix(Weighted{a, 3}, Weighted{b, 1})
	r := mem.NewRand(1)
	m.Reset(r)
	counts := [2]int{}
	for i := 0; i < 40000; i++ {
		if m.Step(r).Addr < 1<<32 {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("mix ratio = %.2f, want ~3", ratio)
	}
}

func TestMixRejectsBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMix accepted non-positive weight")
		}
	}()
	NewMix(Weighted{&HotSet{Region: Region{Blocks: 1}}, 0})
}

func TestGapMeanApproximation(t *testing.T) {
	k := &HotSet{Region: Region{Base: 0, Blocks: 8}, PCBase: 0x10, GapMean: 5}
	p := NewProgram(k, 50000, 1)
	var total uint64
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		total += uint64(a.Gap)
	}
	avg := float64(total) / 50000
	if avg < 4.5 || avg > 5.5 {
		t.Errorf("mean gap = %.2f, want ~5", avg)
	}
}

func TestProgramDeterminismProperty(t *testing.T) {
	f := func(seed uint64, blocks uint8) bool {
		n := int(blocks)%100 + 10
		mk := func() []mem.Access {
			k := &RandomAccess{Region: Region{Blocks: n}, PCCount: 8, PCBase: 0x1}
			return Collect(NewProgram(k, 100, seed))
		}
		a, b := mk(), mk()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
