package trace

import "sdbp/internal/mem"

// Stream sweeps a region sequentially, optionally with a trailing
// second visit (Lag) that models producer/consumer array traversals:
// block i is filled by the lead sweep at one code site and receives its
// last touch Lag blocks later at a different code site — the strongest
// form of PC-correlated death. With a region larger than the LLC and
// Lag 0 it degenerates to a thrashing cyclic scan (zero LRU reuse at
// LLC scale, the pattern BIP/DIP exploit).
type Stream struct {
	// Region is the swept array.
	Region Region
	// Burst is the number of consecutive accesses per block (distinct
	// offsets, distinct PCs); all but the first hit the L1.
	Burst int
	// Lag, when positive, adds a trailing visit to block i-Lag at its
	// own code site. Lags beyond the L2's reach make the trailing visit
	// the block's last LLC access.
	Lag int
	// LagProb is the per-block probability of the trailing visit
	// actually occurring (0 means 1.0). A fractional probability splits
	// every code site's outcome — the lead site's blocks sometimes die
	// untouched, per-block access counts flicker between one and two —
	// which low-threshold predictors chase and the sampling predictor's
	// high threshold rides out.
	LagProb float64
	// WriteLag marks the trailing visit as a store.
	WriteLag bool
	// PCBase is the kernel's code-site base address.
	PCBase uint64
	// GapMean is the mean non-memory instruction gap per access.
	GapMean int

	pos   int
	burst int
	lag   bool
	gaps  gapCache
}

// Reset implements Kernel.
func (k *Stream) Reset(*mem.Rand) {
	k.pos, k.burst, k.lag = 0, 0, false
}

// Step implements Kernel.
func (k *Stream) Step(r *mem.Rand) mem.Access {
	if k.Burst < 1 {
		k.Burst = 1
	}
	if k.lag {
		k.lag = false
		return mem.Access{
			PC:    k.PCBase + 0x400,
			Addr:  k.Region.Addr(k.pos-1-k.Lag, 0),
			Write: k.WriteLag,
			Gap:   k.gaps.draw(r, k.GapMean),
		}
	}
	a := mem.Access{
		PC:   k.PCBase + uint64(k.burst)*8,
		Addr: k.Region.Addr(k.pos, k.burst*8),
		Gap:  k.gaps.draw(r, k.GapMean),
	}
	k.burst++
	if k.burst >= k.Burst {
		k.burst = 0
		k.pos++
		if k.pos >= k.Region.Blocks {
			k.pos = 0
		}
		if k.Lag > 0 && (k.LagProb == 0 || r.Chance(k.LagProb)) {
			k.lag = true
		}
	}
	return a
}

// Generational models phase-structured data: the region is consumed in
// segments, each segment living through a sequence of passes — a setup
// pass that touches every block, a variable number of use passes, and a
// final pass — each pass at its own code site. After the final pass the
// segment's blocks are dead.
//
// Use passes touch each block only with probability UseProb, and the
// final pass with probability FinalProb. This models what the paper's
// mid-level cache does to the LLC's view of a block: the set of
// references that reach the LLC varies per block and per generation, so
// reference-trace signatures rarely repeat and per-generation access
// counts are unstable — while the *last-touch code site* stays the
// final pass for almost every block. That asymmetry is exactly what the
// sampling predictor exploits and the reftrace/counting baselines
// stumble over.
type Generational struct {
	// Region is the data the program works through.
	Region Region
	// SegBlocks is the blocks per generation segment. It must exceed
	// the L2's reach for the passes to be visible at the LLC.
	SegBlocks int
	// MinUses and MaxUses bound the number of use passes (uniform per
	// generation).
	MinUses, MaxUses int
	// UseProb is the per-block probability of being touched in a use
	// pass (0 means 1.0: deterministic).
	UseProb float64
	// FinalProb is the per-block probability of the final-pass touch
	// (0 means 1.0).
	FinalProb float64
	// Fresh makes every generation work over fresh addresses (the
	// program allocates new buffers each phase), so a segment's blocks
	// are truly dead after their final pass. Without Fresh the region's
	// addresses are reused generation after generation (an in-place
	// table), so "dead" blocks are re-referenced at the next setup pass
	// if they are still resident.
	Fresh bool
	// PCBase is the kernel's code-site base address.
	PCBase uint64
	// GapMean is the mean non-memory instruction gap per access.
	GapMean int

	seg    int // current segment index
	pass   int // current pass within the segment
	passes int // total passes this generation (uses + 2)
	pos    int // block within segment
	epoch  int // completed laps over the region (Fresh addressing)
	gaps   gapCache
}

// Reset implements Kernel.
func (k *Generational) Reset(r *mem.Rand) {
	k.seg, k.pos, k.pass, k.epoch = 0, 0, 0, 0
	k.passes = k.genPasses(r)
}

func (k *Generational) genPasses(r *mem.Rand) int {
	min, max := k.MinUses, k.MaxUses
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	return 2 + min + r.Intn(max-min+1)
}

// advance moves the cursor one block forward, rolling over passes,
// generations and segments.
func (k *Generational) advance(r *mem.Rand) {
	k.pos++
	if k.pos < k.SegBlocks {
		return
	}
	k.pos = 0
	k.pass++
	if k.pass >= k.passes {
		k.pass = 0
		k.passes = k.genPasses(r)
		segs := k.Region.Blocks / k.SegBlocks
		if segs < 1 {
			segs = 1
		}
		k.seg++
		if k.seg >= segs {
			k.seg = 0
			k.epoch++
		}
	}
}

// Step implements Kernel.
func (k *Generational) Step(r *mem.Rand) mem.Access {
	useProb, finalProb := k.UseProb, k.FinalProb
	if useProb == 0 {
		useProb = 1
	}
	if finalProb == 0 {
		finalProb = 1
	}
	for {
		var pc uint64
		write := false
		touch := true
		switch {
		case k.pass == 0:
			pc = k.PCBase // setup (store)
			write = true
		case k.pass == k.passes-1:
			pc = k.PCBase + 0x800 // final pass: the death site
			touch = r.Chance(finalProb)
		default:
			pc = k.PCBase + 0x100 + uint64(k.pass)*8
			touch = r.Chance(useProb)
		}
		block := k.seg*k.SegBlocks + k.pos
		epoch := k.epoch
		k.advance(r)
		if !touch {
			continue
		}
		addr := k.Region.Addr(block, 0)
		if k.Fresh {
			addr = k.Region.Base +
				(uint64(epoch)*uint64(k.Region.Blocks)+uint64(block))*mem.BlockSize
		}
		return mem.Access{
			PC:    pc,
			Addr:  addr,
			Write: write,
			Gap:   k.gaps.draw(r, k.GapMean),
		}
	}
}

// Repeat wraps a kernel so that every block it touches is accessed
// Factor times in a row (distinct offsets and nearby code sites). All
// repeats after the first hit the L1, restoring the short-range
// temporal and spatial locality that lets the upper levels filter the
// reference stream — the filtering the paper's LLC predictors live
// downstream of.
type Repeat struct {
	// Kernel is the wrapped kernel.
	Kernel Kernel
	// Factor is the total number of touches per block (1 passes
	// through).
	Factor int

	last mem.Access
	left int
}

// Reset implements Kernel.
func (k *Repeat) Reset(r *mem.Rand) {
	k.Kernel.Reset(r)
	k.left = 0
}

// Step implements Kernel.
func (k *Repeat) Step(r *mem.Rand) mem.Access {
	if k.left > 0 {
		k.left--
		a := k.last
		a.PC += uint64(k.Factor-k.left) * 4
		a.Addr += uint64(k.Factor-k.left) * 8
		a.DependentLoad = false // repeats hit the L1; no serialization
		return a
	}
	a := k.Kernel.Step(r)
	k.last = a
	if k.Factor > 1 {
		k.left = k.Factor - 1
	}
	return a
}

// PointerChase walks a single-cycle random permutation over a region
// with dependent loads — the mcf/omnetpp-style behavior where every
// block's reuse distance equals the whole working set and misses cannot
// overlap.
type PointerChase struct {
	// Region is the node pool.
	Region Region
	// PCCount is the number of code sites the traversal loop spreads
	// over (field accesses in the node).
	PCCount int
	// PCBase is the kernel's code-site base address.
	PCBase uint64
	// GapMean is the mean non-memory instruction gap per access.
	GapMean int

	perm []int32
	cur  int32
	gaps gapCache
	pcs  intnCache
}

// Reset implements Kernel: builds a fresh single-cycle permutation
// (Sattolo's algorithm) so every node is visited exactly once per lap.
func (k *PointerChase) Reset(r *mem.Rand) {
	n := k.Region.Blocks
	if k.perm == nil || len(k.perm) != n {
		k.perm = make([]int32, n)
	}
	for i := range k.perm {
		k.perm[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i)
		k.perm[i], k.perm[j] = k.perm[j], k.perm[i]
	}
	k.cur = 0
}

// Step implements Kernel.
func (k *PointerChase) Step(r *mem.Rand) mem.Access {
	pcs := k.PCCount
	if pcs < 1 {
		pcs = 1
	}
	a := mem.Access{
		PC:            k.PCBase + uint64(k.pcs.draw(r, pcs))*8,
		Addr:          k.Region.Addr(int(k.cur), 0),
		DependentLoad: true,
		Gap:           k.gaps.draw(r, k.GapMean),
	}
	k.cur = k.perm[k.cur]
	return a
}

// RandomAccess issues uniformly random references over a region from a
// large set of code sites — the astar-style behavior no dead block
// predictor handles well, where the only defense is low coverage.
type RandomAccess struct {
	// Region is the reference footprint.
	Region Region
	// PCCount is the number of distinct code sites.
	PCCount int
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	// PCBase is the kernel's code-site base address.
	PCBase uint64
	// GapMean is the mean non-memory instruction gap per access.
	GapMean int

	gaps   gapCache
	pcs    intnCache
	blocks intnCache
}

// Reset implements Kernel.
func (k *RandomAccess) Reset(*mem.Rand) {}

// Step implements Kernel.
func (k *RandomAccess) Step(r *mem.Rand) mem.Access {
	pcs := k.PCCount
	if pcs < 1 {
		pcs = 1
	}
	return mem.Access{
		PC:    k.PCBase + uint64(k.pcs.draw(r, pcs))*8,
		Addr:  k.Region.Addr(k.blocks.draw(r, k.Region.Blocks), 0),
		Write: r.Chance(k.WriteFrac),
		Gap:   k.gaps.draw(r, k.GapMean),
	}
}

// HotSet loops sequentially over a small region that fits in the upper
// levels of the hierarchy — compute-bound behavior that contributes
// instructions and L1/L2 hits but (almost) no LLC traffic.
type HotSet struct {
	// Region is the resident working set.
	Region Region
	// PCBase is the kernel's code-site base address.
	PCBase uint64
	// GapMean is the mean non-memory instruction gap per access.
	GapMean int

	pos  int
	gaps gapCache
}

// Reset implements Kernel.
func (k *HotSet) Reset(*mem.Rand) { k.pos = 0 }

// Step implements Kernel.
func (k *HotSet) Step(r *mem.Rand) mem.Access {
	a := mem.Access{
		PC:   k.PCBase + uint64(k.pos&7)*8,
		Addr: k.Region.Addr(k.pos, 0),
		Gap:  k.gaps.draw(r, k.GapMean),
	}
	k.pos++
	if k.pos >= k.Region.Blocks {
		k.pos = 0
	}
	return a
}

// Weighted is one Mix member with its selection weight.
type Weighted struct {
	// Kernel is the member.
	Kernel Kernel
	// Weight is its relative share of accesses.
	Weight int
}

// Mix interleaves kernels, choosing each next access from a member with
// probability proportional to its weight — the fine-grained interleaving
// of loops a real program's reference stream exhibits.
type Mix struct {
	// Members are the interleaved kernels.
	Members []Weighted

	total int
	pick  intnCache
	// table maps a draw in [0, total) straight to its member index,
	// replacing the per-access weight scan with one load. Built when the
	// weight sum is small (it always is in practice); the scan remains
	// as the fallback. The draw→member mapping is identical either way.
	table []uint8
}

// NewMix builds an interleaving of the given members.
func NewMix(members ...Weighted) *Mix {
	m := &Mix{Members: members}
	for _, w := range members {
		if w.Weight <= 0 {
			panic("trace: mix weights must be positive")
		}
		m.total += w.Weight
	}
	if m.total == 0 {
		panic("trace: empty mix")
	}
	if m.total <= 1<<12 && len(members) <= 1<<8 {
		m.table = make([]uint8, m.total)
		p := 0
		for i, w := range members {
			for j := 0; j < w.Weight; j++ {
				m.table[p] = uint8(i)
				p++
			}
		}
	}
	return m
}

// Reset implements Kernel.
func (m *Mix) Reset(r *mem.Rand) {
	for _, w := range m.Members {
		w.Kernel.Reset(r)
	}
}

// Step implements Kernel.
func (m *Mix) Step(r *mem.Rand) mem.Access {
	pick := m.pick.draw(r, m.total)
	if m.table != nil {
		return m.Members[m.table[pick]].Kernel.Step(r)
	}
	for i := range m.Members {
		pick -= m.Members[i].Weight
		if pick < 0 {
			return m.Members[i].Kernel.Step(r)
		}
	}
	return m.Members[len(m.Members)-1].Kernel.Step(r)
}
