package trace

// Native Go fuzz target for the binary trace format: arbitrary bytes
// must never panic the parser, and anything the parser accepts must
// survive a serialize⇄parse round trip record-for-record. Run the
// full fuzzer with
//
//	go test ./internal/trace -run '^$' -fuzz FuzzTraceFileRoundTrip -fuzztime 30s
//
// Without -fuzz the committed corpus and the seeds below run as plain
// tests.

import (
	"bytes"
	"testing"
)

// seedTrace serializes a small deterministic stream so the corpus
// starts with structurally valid inputs.
func seedTrace(tb testing.TB, kernel Kernel, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := Write(&buf, NewProgram(kernel, n, 7)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzTraceFileRoundTrip(f *testing.F) {
	region := Region{Base: 0x10000, Blocks: 64}
	f.Add(seedTrace(f, &Stream{Region: region, Burst: 2, Lag: 4, GapMean: 3}, 200))
	f.Add(seedTrace(f, &PointerChase{Region: region, PCCount: 4}, 100))
	f.Add(seedTrace(f, &RandomAccess{Region: region, PCCount: 8, WriteFrac: 0.5}, 100))
	f.Add(traceMagic[:])                                    // header only, truncated count
	f.Add([]byte("SDBPTRC9"))                               // wrong magic
	f.Add([]byte{})                                         // empty input
	f.Add(append(append([]byte{}, traceMagic[:]...), 0x05)) // count 5, no records

	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected cleanly: that is the contract
		}
		// Round trip: what the parser accepted must reserialize and
		// reparse to the identical record sequence.
		var buf bytes.Buffer
		n, err := Write(&buf, r1)
		if err != nil {
			t.Fatalf("serializing a parsed trace failed: %v", err)
		}
		if n != r1.Len() {
			t.Fatalf("wrote %d of %d records", n, r1.Len())
		}
		r2, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("reparsing a serialized trace failed: %v", err)
		}
		if r2.Len() != r1.Len() {
			t.Fatalf("round trip changed record count: %d != %d", r2.Len(), r1.Len())
		}
		r1.Reset()
		r2.Reset()
		for i := 0; ; i++ {
			a1, ok1 := r1.Next()
			a2, ok2 := r2.Next()
			if ok1 != ok2 {
				t.Fatalf("record %d: stream lengths diverge", i)
			}
			if !ok1 {
				break
			}
			if a1 != a2 {
				t.Fatalf("record %d changed across round trip:\n first: %+v\n again: %+v", i, a1, a2)
			}
		}
	})
}

// FuzzProgramDeterminism pins the generator contract the golden tests
// and multicore first-pass counting rely on: Reset replays the
// identical stream, from any seed and length.
func FuzzProgramDeterminism(f *testing.F) {
	f.Add(uint64(1), uint16(100))
	f.Add(uint64(0xdeadbeef), uint16(1))
	f.Add(uint64(0), uint16(0))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16) {
		k := NewMix(
			Weighted{Kernel: &Stream{Region: Region{Base: 0, Blocks: 32}, Lag: 2}, Weight: 3},
			Weighted{Kernel: &RandomAccess{Region: Region{Base: 1 << 20, Blocks: 64}, PCCount: 4}, Weight: 1},
		)
		p := NewProgram(k, int(n)%1024, seed)
		first := Collect(p)
		p.Reset()
		second := Collect(p)
		if len(first) != len(second) {
			t.Fatalf("replay length %d != %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("access %d differs across Reset: %+v vs %+v", i, first[i], second[i])
			}
		}
	})
}
