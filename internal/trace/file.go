package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sdbp/internal/mem"
)

// Binary trace format: a magic header followed by delta-encoded access
// records. PCs and addresses are written as zig-zag varint deltas from
// the previous record (reference streams are locally correlated, so
// deltas compress well); flags and the gap share a final varint.
//
//	header:  "SDBPTRC1" | varint(count)
//	record:  svarint(pcDelta) | svarint(addrDelta) |
//	         varint(gap<<3 | dep<<2 | write<<1 | threadBitsFollow)
//	         [varint(thread) when threadBitsFollow]

var traceMagic = [8]byte{'S', 'D', 'B', 'P', 'T', 'R', 'C', '1'}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Write serializes a stream of accesses. It drains the generator.
func Write(w io.Writer, g Generator) (int, error) {
	// Count first: deterministic generators replay exactly.
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	g.Reset()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return 0, err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	putS := func(v int64) error {
		k := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	if err := put(uint64(n)); err != nil {
		return 0, err
	}

	var prevPC, prevAddr uint64
	written := 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if err := putS(int64(a.PC - prevPC)); err != nil {
			return written, err
		}
		if err := putS(int64(a.Addr - prevAddr)); err != nil {
			return written, err
		}
		prevPC, prevAddr = a.PC, a.Addr
		flags := uint64(a.Gap) << 3
		if a.DependentLoad {
			flags |= 1 << 2
		}
		if a.Write {
			flags |= 1 << 1
		}
		if a.Thread != 0 {
			flags |= 1
		}
		if err := put(flags); err != nil {
			return written, err
		}
		if a.Thread != 0 {
			if err := put(uint64(a.Thread)); err != nil {
				return written, err
			}
		}
		written++
	}
	return written, bw.Flush()
}

// Reader streams accesses back from a serialized trace. It implements
// Generator over a fully buffered copy, so Reset replays from the
// start.
type Reader struct {
	records []mem.Access
	pos     int
}

// NewReader parses a serialized trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	const maxReasonable = 1 << 30
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, count)
	}

	records := make([]mem.Access, 0, count)
	var pc, addr uint64
	for i := uint64(0); i < count; i++ {
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d pc: %v", ErrBadTrace, i, err)
		}
		daddr, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d addr: %v", ErrBadTrace, i, err)
		}
		flags, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d flags: %v", ErrBadTrace, i, err)
		}
		pc += uint64(dpc)
		addr += uint64(daddr)
		a := mem.Access{
			PC:            pc,
			Addr:          addr,
			Gap:           uint32(flags >> 3),
			DependentLoad: flags&(1<<2) != 0,
			Write:         flags&(1<<1) != 0,
		}
		if flags&1 != 0 {
			tid, err := binary.ReadUvarint(br)
			if err != nil || tid > 255 {
				return nil, fmt.Errorf("%w: record %d thread", ErrBadTrace, i)
			}
			a.Thread = uint8(tid)
		}
		records = append(records, a)
	}
	return &Reader{records: records}, nil
}

// Reset implements Generator.
func (r *Reader) Reset() { r.pos = 0 }

// Next implements Generator.
func (r *Reader) Next() (mem.Access, bool) {
	if r.pos >= len(r.records) {
		return mem.Access{}, false
	}
	a := r.records[r.pos]
	r.pos++
	return a, true
}

// NextBatch implements BatchGenerator: a bulk copy from the decoded
// records.
func (r *Reader) NextBatch(dst []mem.Access) int {
	n := copy(dst, r.records[r.pos:])
	r.pos += n
	return n
}

// Len returns the number of records in the trace.
func (r *Reader) Len() int { return len(r.records) }
