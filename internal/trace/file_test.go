package trace

import (
	"bytes"
	"errors"
	"testing"

	"sdbp/internal/mem"
)

func roundTrip(t *testing.T, g Generator) (*Reader, int) {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, g)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r, n
}

func TestTraceRoundTrip(t *testing.T) {
	k := NewMix(
		Weighted{&Stream{Region: Region{Base: 1 << 40, Blocks: 64}, Burst: 2, PCBase: 0x1000, GapMean: 3}, 2},
		Weighted{&PointerChase{Region: Region{Base: 2 << 40, Blocks: 32}, PCCount: 4, PCBase: 0x2000, GapMean: 1}, 1},
	)
	orig := NewProgram(k, 5000, 7)
	want := Collect(orig)
	orig.Reset()

	r, n := roundTrip(t, orig)
	if n != len(want) || r.Len() != len(want) {
		t.Fatalf("wrote %d, read %d, want %d", n, r.Len(), len(want))
	}
	got := Collect(r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestTraceRoundTripThreads(t *testing.T) {
	recs := []mem.Access{
		{PC: 1, Addr: 64, Thread: 3, Write: true, Gap: 9},
		{PC: 2, Addr: 0, Thread: 0, DependentLoad: true},
		{PC: 1 << 60, Addr: 1 << 62, Thread: 255},
	}
	r, _ := roundTrip(t, &sliceGen{recs: recs})
	got := Collect(r)
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReaderReset(t *testing.T) {
	r, _ := roundTrip(t, &sliceGen{recs: []mem.Access{{PC: 1}, {PC: 2}}})
	a := Collect(r)
	r.Reset()
	b := Collect(r)
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] {
		t.Error("Reset did not replay the trace")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________"),
		append(append([]byte{}, traceMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for i, c := range cases {
		if _, err := NewReader(bytes.NewReader(c)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, &sliceGen{recs: []mem.Access{{PC: 99, Addr: 640}, {PC: 98, Addr: 0}}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > 8; cut-- {
		if _, err := NewReader(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTraceCompression(t *testing.T) {
	// Sequential streams must delta-compress to a few bytes per record.
	g := NewProgram(&Stream{Region: Region{Base: 1 << 44, Blocks: 4096}, PCBase: 0x400000}, 10000, 1)
	var buf bytes.Buffer
	n, err := Write(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(n)
	if perRecord > 6 {
		t.Errorf("%.1f bytes/record; delta encoding ineffective", perRecord)
	}
}

// sliceGen adapts a fixed record slice to Generator.
type sliceGen struct {
	recs []mem.Access
	pos  int
}

func (s *sliceGen) Reset() { s.pos = 0 }
func (s *sliceGen) Next() (mem.Access, bool) {
	if s.pos >= len(s.recs) {
		return mem.Access{}, false
	}
	a := s.recs[s.pos]
	s.pos++
	return a, true
}
