// Package trace provides the synthetic memory reference streams the
// reproduction substitutes for SPEC CPU 2006 traces, built from a small
// set of composable kernels that reproduce the statistical properties
// dead block prediction depends on: PC-correlated last touches,
// generational reuse, streaming, pointer chasing, thrashing, and
// unpredictable reference behavior.
package trace

import "sdbp/internal/mem"

// Generator produces a finite, deterministic stream of memory accesses.
// Reset rewinds it to the beginning of the identical stream.
type Generator interface {
	Reset()
	Next() (mem.Access, bool)
}

// Region is a contiguous range of cache blocks a kernel works over.
type Region struct {
	// Base is the region's starting byte address (block aligned).
	Base uint64
	// Blocks is the region's length in cache blocks.
	Blocks int
}

// Addr returns the byte address of block i (mod the region length) at
// the given intra-block offset.
func (r Region) Addr(i int, offset int) uint64 {
	// Kernels almost always pass an in-range index; the reduction is
	// only needed for wrapped cursors and negative strides.
	if uint(i) >= uint(r.Blocks) {
		i %= r.Blocks
		if i < 0 {
			i += r.Blocks
		}
	}
	return r.Base + uint64(i)*mem.BlockSize + uint64(offset&(mem.BlockSize-1))
}

// Bytes returns the region size in bytes.
func (r Region) Bytes() int { return r.Blocks * mem.BlockSize }

// Kernel is one memory-behavior building block. Kernels are composed by
// Mix and driven by a Program; all randomness flows through the passed
// generator so streams are reproducible.
type Kernel interface {
	// Reset reinitializes kernel state (permutations, cursors).
	Reset(r *mem.Rand)
	// Step emits the kernel's next access.
	Step(r *mem.Rand) mem.Access
}

// intnCache memoizes the Divisor for one bounded-random call site whose
// bound is loop-invariant in practice (gap ranges, mix weights, region
// sizes), replacing the hardware divide in the generation hot path. The
// draw matches r.Intn(n) bit-for-bit and re-derives the Divisor if the
// bound ever changes. draw and its check stay small enough to inline
// into the kernel Step methods; only the cold rebuild is a call.
type intnCache struct {
	div mem.Divisor
}

func (c *intnCache) draw(r *mem.Rand, n int) int {
	if c.div.D() != uint64(n) {
		c.rebuild(n)
	}
	return int(c.div.Mod(r.Uint64()))
}

func (c *intnCache) rebuild(n int) {
	if n <= 0 {
		panic("mem.Rand.Intn: n must be positive")
	}
	c.div = mem.NewDivisor(uint64(n))
}

// gapCache samples the non-memory instruction gap preceding an access,
// uniform in [0, 2*mean] so the mean is mean; non-positive means draw
// nothing and yield 0. It is an intnCache for the divisor 2m+1.
type gapCache struct {
	c intnCache
}

func (g *gapCache) draw(r *mem.Rand, mean int) uint32 {
	if mean <= 0 {
		return 0
	}
	return uint32(g.c.draw(r, 2*mean+1))
}

// Program adapts a Kernel to the Generator interface, bounding the
// stream length and owning the deterministic random source.
type Program struct {
	kernel Kernel
	length int
	seed   uint64

	r *mem.Rand
	n int
}

// NewProgram wraps kernel in a generator producing length accesses from
// the given seed.
func NewProgram(kernel Kernel, length int, seed uint64) *Program {
	if length < 0 {
		panic("trace: negative program length")
	}
	p := &Program{kernel: kernel, length: length, seed: seed, r: mem.NewRand(seed)}
	p.kernel.Reset(p.r)
	return p
}

// Reset implements Generator.
func (p *Program) Reset() {
	p.r.Seed(p.seed)
	p.kernel.Reset(p.r)
	p.n = 0
}

// Next implements Generator.
func (p *Program) Next() (mem.Access, bool) {
	if p.n >= p.length {
		return mem.Access{}, false
	}
	p.n++
	return p.kernel.Step(p.r), true
}

// BatchGenerator is implemented by generators that can fill a caller's
// buffer in one call, so drive loops pay the interface dispatch once
// per batch instead of once per access. The stream produced is
// identical to repeated Next calls.
type BatchGenerator interface {
	Generator
	// NextBatch fills dst from the stream and returns how many accesses
	// were produced; 0 means the stream is exhausted.
	NextBatch(dst []mem.Access) int
}

// NextBatch implements BatchGenerator.
func (p *Program) NextBatch(dst []mem.Access) int {
	n := p.length - p.n
	if n > len(dst) {
		n = len(dst)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = p.kernel.Step(p.r)
	}
	p.n += n
	return n
}

// Length returns the program's total access count.
func (p *Program) Length() int { return p.length }

// Replay adapts a pre-collected stream back to the Generator interface:
// Next and NextBatch yield exactly the accesses of the slice, and Reset
// rewinds to the start. Replaying a memoized stream costs one bulk copy
// per batch where regenerating it costs the full kernel machinery per
// access (see workloads' stream memo).
type Replay struct {
	s []mem.Access
	n int
}

// NewReplay wraps a collected stream. The slice is shared, not copied;
// callers must not mutate it.
func NewReplay(s []mem.Access) *Replay { return &Replay{s: s} }

// Reset implements Generator.
func (r *Replay) Reset() { r.n = 0 }

// Next implements Generator.
func (r *Replay) Next() (mem.Access, bool) {
	if r.n >= len(r.s) {
		return mem.Access{}, false
	}
	a := r.s[r.n]
	r.n++
	return a, true
}

// NextBatch implements BatchGenerator.
func (r *Replay) NextBatch(dst []mem.Access) int {
	n := copy(dst, r.s[r.n:])
	r.n += n
	return n
}

// Length returns the stream's total access count.
func (r *Replay) Length() int { return len(r.s) }

// Collect drains a generator into a slice (tests and MIN capture).
// Batch-capable generators drain in block-sized appends.
func Collect(g Generator) []mem.Access {
	if bg, ok := g.(BatchGenerator); ok {
		var out []mem.Access
		var buf [256]mem.Access
		for {
			n := bg.NextBatch(buf[:])
			if n == 0 {
				return out
			}
			out = append(out, buf[:n]...)
		}
	}
	var out []mem.Access
	for {
		a, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}
