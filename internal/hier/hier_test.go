package hier

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
)

func newTestCore() *Core {
	llc := cache.New(LLCConfig(1), policy.NewLRU())
	return NewCore(DefaultConfig(), llc)
}

func TestDefaultGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1.SizeBytes != 32<<10 || cfg.L1.Ways != 8 {
		t.Errorf("L1 = %+v", cfg.L1)
	}
	if cfg.L2.SizeBytes != 256<<10 || cfg.L2.Ways != 8 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if llc := LLCConfig(1); llc.SizeBytes != 2<<20 || llc.Ways != 16 {
		t.Errorf("LLC(1) = %+v", llc)
	}
	if llc := LLCConfig(4); llc.SizeBytes != 8<<20 {
		t.Errorf("LLC(4) = %+v", llc)
	}
}

func TestMissFillsAllLevels(t *testing.T) {
	c := newTestCore()
	a := mem.Access{Addr: 0x10000}
	if lvl := c.Access(a); lvl != LevelMemory {
		t.Fatalf("cold access satisfied at %v", lvl)
	}
	if !c.L1.Contains(a.Addr) || !c.L2.Contains(a.Addr) || !c.LLC.Contains(a.Addr) {
		t.Error("miss did not allocate at every level")
	}
	if lvl := c.Access(a); lvl != LevelL1 {
		t.Errorf("second access satisfied at %v, want L1", lvl)
	}
}

func TestLevelsReportedByResidence(t *testing.T) {
	c := newTestCore()
	a := mem.Access{Addr: 0x40}
	c.Access(a)
	// Evict from L1 by filling its set (L1: 64 sets, 8 ways; stride
	// 64 sets * 64B = 4KB keeps the same L1 set).
	for i := 1; i <= 8; i++ {
		c.Access(mem.Access{Addr: a.Addr + uint64(i)*4096})
	}
	if c.L1.Contains(a.Addr) {
		t.Fatal("block still in L1 after conflict fills")
	}
	if lvl := c.Access(a); lvl != LevelL2 {
		t.Errorf("access satisfied at %v, want L2", lvl)
	}
}

func TestL2FiltersLLCTraffic(t *testing.T) {
	c := newTestCore()
	// A working set fitting the L2 but not the L1: after warmup the
	// LLC sees no more traffic.
	blocks := 2048 // 128KB: half the L2, 4x the L1
	for lap := 0; lap < 3; lap++ {
		for b := 0; b < blocks; b++ {
			c.Access(mem.Access{Addr: uint64(b) * mem.BlockSize})
		}
	}
	llcAccesses := c.LLC.Stats().Accesses
	if llcAccesses != uint64(blocks) {
		t.Errorf("LLC saw %d accesses, want %d (cold fills only)", llcAccesses, blocks)
	}
}

func TestCaptureGapAccounting(t *testing.T) {
	c := newTestCore()
	var captured []mem.Access
	c.CaptureLLC(func(a mem.Access) { captured = append(captured, a) })

	// First access: gap 4 -> LLC access with gap 4 (instructions before
	// it: 4 non-memory).
	c.Access(mem.Access{Addr: 0, Gap: 4})
	// Two L1 hits (gap 2 and 3) then a new block (gap 1): the captured
	// gap covers everything since the last LLC access: 2+1 + 3+1 + 1.
	c.Access(mem.Access{Addr: 0, Gap: 2})
	c.Access(mem.Access{Addr: 8, Gap: 3})
	c.Access(mem.Access{Addr: 4096 * 64, Gap: 1})

	if len(captured) != 2 {
		t.Fatalf("captured %d LLC accesses, want 2", len(captured))
	}
	if captured[0].Gap != 4 {
		t.Errorf("first captured gap = %d, want 4", captured[0].Gap)
	}
	if captured[1].Gap != 8 {
		t.Errorf("second captured gap = %d, want 8 (2+1+3+1+1)", captured[1].Gap)
	}
}

func TestCaptureMatchesLLCAccessCount(t *testing.T) {
	c := newTestCore()
	n := 0
	c.CaptureLLC(func(mem.Access) { n++ })
	r := mem.NewRand(1)
	for i := 0; i < 20000; i++ {
		c.Access(mem.Access{Addr: uint64(r.Intn(1 << 16))})
	}
	if uint64(n) != c.LLC.Stats().Accesses {
		t.Errorf("captured %d, LLC counted %d", n, c.LLC.Stats().Accesses)
	}
}

func TestSharedLLCAcrossCores(t *testing.T) {
	llc := cache.New(LLCConfig(4), policy.NewLRU())
	c1 := NewCore(DefaultConfig(), llc)
	c2 := NewCore(DefaultConfig(), llc)
	a := mem.Access{Addr: 0xABCDE0}
	c1.Access(a)
	// Core 2 misses its private levels but hits the shared LLC.
	if lvl := c2.Access(a); lvl != LevelLLC {
		t.Errorf("core 2 satisfied at %v, want shared LLC", lvl)
	}
}

func TestLevelLatenciesAndStrings(t *testing.T) {
	levels := []Level{LevelL1, LevelL2, LevelLLC, LevelMemory}
	last := 0
	for _, l := range levels {
		if l.Latency() <= last {
			t.Errorf("latency not increasing at %v", l)
		}
		last = l.Latency()
		if l.String() == "" {
			t.Errorf("empty name for level %d", l)
		}
	}
}

func TestNilLLCIsCaptureOnly(t *testing.T) {
	c := NewCore(DefaultConfig(), nil)
	if lvl := c.Access(mem.Access{Addr: 0}); lvl != LevelMemory {
		t.Errorf("nil-LLC miss reported %v", lvl)
	}
}

func TestCoreStatsReconcile(t *testing.T) {
	c := newTestCore()
	for i := 0; i < 5000; i++ {
		c.Access(mem.Access{Addr: uint64(i%700) * 64})
	}
	ls := c.Stats()
	for _, lvl := range []struct {
		name string
		s    cache.Stats
	}{{"L1", ls.L1}, {"L2", ls.L2}, {"LLC", ls.LLC}} {
		if lvl.s.Hits+lvl.s.Misses != lvl.s.Accesses {
			t.Errorf("%s: hits(%d)+misses(%d) != accesses(%d)",
				lvl.name, lvl.s.Hits, lvl.s.Misses, lvl.s.Accesses)
		}
	}
	if ls.L1.Accesses != 5000 {
		t.Errorf("L1 accesses = %d, want 5000", ls.L1.Accesses)
	}
	// Inclusive-path filtering: each level only sees the misses of the
	// one above it.
	if ls.L2.Accesses != ls.L1.Misses {
		t.Errorf("L2 accesses (%d) != L1 misses (%d)", ls.L2.Accesses, ls.L1.Misses)
	}
	if ls.LLC.Accesses != ls.L2.Misses {
		t.Errorf("LLC accesses (%d) != L2 misses (%d)", ls.LLC.Accesses, ls.L2.Misses)
	}
	tot := ls.Total()
	if tot.Accesses != ls.L1.Accesses+ls.L2.Accesses+ls.LLC.Accesses {
		t.Errorf("Total().Accesses = %d, want sum of levels", tot.Accesses)
	}
}

func TestCoreStatsNilLLC(t *testing.T) {
	c := NewCore(DefaultConfig(), nil)
	c.Access(mem.Access{Addr: 0x40})
	ls := c.Stats()
	if ls.LLC != (cache.Stats{}) {
		t.Errorf("nil-LLC core reported LLC stats: %+v", ls.LLC)
	}
	if ls.L1.Accesses != 1 {
		t.Errorf("L1 accesses = %d, want 1", ls.L1.Accesses)
	}
}
