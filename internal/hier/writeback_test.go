package hier

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
)

func wbConfig() Config {
	cfg := DefaultConfig()
	cfg.PropagateWritebacks = true
	return cfg
}

func TestWritebackReachesL2(t *testing.T) {
	llc := cache.New(LLCConfig(1), policy.NewLRU())
	c := NewCore(wbConfig(), llc)

	// Dirty a block, then conflict it out of the L1 (same L1 set).
	dirty := mem.Access{Addr: 0x40, Write: true}
	c.Access(dirty)
	for i := 1; i <= 8; i++ {
		c.Access(mem.Access{Addr: dirty.Addr + uint64(i)*4096})
	}
	if c.L1.Contains(dirty.Addr) {
		t.Fatal("dirty block still in L1")
	}
	// The L2 received the writeback: its copy must be dirty, observable
	// by conflicting it out of the L2 and checking its writeback count.
	wbBefore := c.L2.Stats().Writebacks
	if wbBefore == 0 {
		// The write-back itself does not dirty-evict from L2 yet; force
		// L2 evictions of the block's set (L2: 512 sets -> stride 32KB).
		for i := 1; i <= 16; i++ {
			c.Access(mem.Access{Addr: dirty.Addr + uint64(i)*(512*64)})
		}
	}
	if c.L2.Stats().Writebacks == 0 {
		t.Error("dirty data vanished without an L2 writeback")
	}
}

func TestWritebackTrafficReachesLLC(t *testing.T) {
	llc := cache.New(LLCConfig(1), policy.NewLRU())
	c := NewCore(wbConfig(), llc)
	r := mem.NewRand(1)
	// Write-heavy traffic over an L2-busting footprint forces dirty L2
	// victims into the LLC.
	for i := 0; i < 100000; i++ {
		c.Access(mem.Access{Addr: uint64(r.Intn(1<<14)) * mem.BlockSize, Write: true})
	}
	if llc.Stats().Writes == 0 {
		t.Error("no writeback traffic reached the LLC")
	}
}

func TestWritebacksOffByDefault(t *testing.T) {
	llc := cache.New(LLCConfig(1), policy.NewLRU())
	c := NewCore(DefaultConfig(), llc)
	r := mem.NewRand(1)
	for i := 0; i < 50000; i++ {
		c.Access(mem.Access{Addr: uint64(r.Intn(1<<14)) * mem.BlockSize, Write: true})
	}
	// Without propagation the LLC sees only demand traffic, whose
	// access count equals the number of L2 misses.
	if got := llc.Stats().Accesses; got != c.L2.Stats().Misses {
		t.Errorf("LLC accesses %d != L2 misses %d with writebacks off",
			got, c.L2.Stats().Misses)
	}
}

func TestWritebacksDoNotTrainPredictor(t *testing.T) {
	smp := predictor.NewSampler(predictor.DefaultSamplerConfig())
	pol := dbrb.New(policy.NewLRU(), smp)
	llc := cache.New(LLCConfig(1), pol)
	c := NewCore(wbConfig(), llc)
	var demand uint64
	c.CaptureLLC(func(mem.Access) { demand++ }) // demand accesses only
	r := mem.NewRand(2)
	for i := 0; i < 100000; i++ {
		c.Access(mem.Access{Addr: uint64(r.Intn(1<<14)) * mem.BlockSize, Write: true})
	}
	if llc.Stats().Accesses == demand {
		t.Fatal("no writebacks reached the LLC; test is vacuous")
	}
	// Every prediction the DBRB policy recorded came from a demand
	// access: predictions == demand accesses, not total accesses.
	if pol.Accuracy().Predictions > demand {
		t.Errorf("predictions %d exceed demand accesses %d — writebacks predicted",
			pol.Accuracy().Predictions, demand)
	}
}

func TestWritebackNeverBypassed(t *testing.T) {
	// A predictor that predicts everything dead would bypass all demand
	// fills; writebacks must still be placed.
	smp := predictor.NewSampler(predictor.SamplerConfig{
		UseSampler: false, Tables: 1, TableEntries: 2, Threshold: 0, // always dead
	})
	pol := dbrb.New(policy.NewLRU(), smp)
	llc := cache.New(LLCConfig(1), pol)
	c := NewCore(wbConfig(), llc)
	r := mem.NewRand(3)
	for i := 0; i < 100000; i++ {
		c.Access(mem.Access{Addr: uint64(r.Intn(1<<14)) * mem.BlockSize, Write: true})
	}
	s := llc.Stats()
	if s.Writes == 0 {
		t.Fatal("no writebacks reached the LLC")
	}
	// All demand fills bypassed, so the LLC's only resident blocks come
	// from writebacks.
	if llc.ValidCount() == 0 {
		t.Error("writebacks were bypassed")
	}
}
