// Package hier wires caches into the paper's three-level hierarchy:
// per-core 32KB 8-way L1 data caches and 256KB 8-way unified L2 caches
// (both LRU), in front of a 16-way last-level cache (2MB per core,
// shared in multi-core configurations). The mid-level cache's filtering
// of temporal locality is central to the paper's argument, so demand
// accesses really do traverse L1 and L2 before reaching the LLC.
package hier

import (
	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
)

// Level identifies where an access was satisfied.
type Level int

const (
	// LevelL1 means the access hit in the L1 data cache.
	LevelL1 Level = iota
	// LevelL2 means it hit in the unified L2.
	LevelL2
	// LevelLLC means it hit in the last-level cache.
	LevelLLC
	// LevelMemory means it missed everywhere.
	LevelMemory
)

// Latency returns the completion latency, in cycles, of an access
// satisfied at the level.
func (l Level) Latency() int {
	switch l {
	case LevelL1:
		return cpu.LatL1
	case LevelL2:
		return cpu.LatL2
	case LevelLLC:
		return cpu.LatLLC
	default:
		return cpu.LatMem
	}
}

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	default:
		return "memory"
	}
}

// Config sizes the private levels. DefaultConfig matches the paper.
type Config struct {
	// L1 is the per-core L1 data cache geometry.
	L1 cache.Config
	// L2 is the per-core unified L2 geometry.
	L2 cache.Config
	// PropagateWritebacks sends dirty L1 victims into the L2 and dirty
	// L2 victims into the LLC as Writeback accesses (which predictors
	// ignore and bypass never drops). The default, matching the runs
	// recorded in EXPERIMENTS.md, only counts write-back traffic in
	// each cache's statistics.
	PropagateWritebacks bool
}

// DefaultConfig returns the paper's private-level geometry: L1D 32KB
// 8-way, L2 256KB 8-way.
func DefaultConfig() Config {
	return Config{
		L1: cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8},
		L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8},
	}
}

// LLCConfig returns the paper's LLC geometry for a given core count:
// 2MB per core, 16-way.
func LLCConfig(cores int) cache.Config {
	return cache.Config{Name: "LLC", SizeBytes: cores * (2 << 20), Ways: 16}
}

// Core is one hardware thread's private cache stack in front of a
// (possibly shared) LLC.
type Core struct {
	L1  *cache.Cache
	L2  *cache.Cache
	LLC *cache.Cache

	// onLLC, when set, observes every access reaching the LLC with its
	// Gap rewritten to the instruction distance since the previous LLC
	// access from this core — the captured stream MIN replays.
	onLLC func(a mem.Access)

	// onLLCMiss, when set, observes demand misses in the LLC — the
	// trigger point for prefetchers.
	onLLCMiss func(a mem.Access)

	// onLLCEvict, when set, observes LLC evictions with the displaced
	// block's address — the trigger point for victim caches.
	onLLCEvict func(evictedAddr uint64)

	writebacks bool   // propagate dirty victims down the hierarchy
	pendingGap uint64 // instructions since the last LLC access

	// AccessBlock scratch, grown on demand and reused across blocks so
	// the steady state allocates nothing.
	filt   []Filtered
	llcAs  []mem.Access
	llcRs  []cache.Result
	llcIdx []int32
}

// NewCore builds a private L1/L2 stack in front of llc (which may be
// shared with other cores, or nil for capture-only runs).
func NewCore(cfg Config, llc *cache.Cache) *Core {
	// Only the LLC's efficiency is ever reported; skipping the private
	// levels' accounting keeps their hit path free of per-line metadata.
	l1, l2 := cfg.L1, cfg.L2
	l1.SkipEfficiency = true
	l2.SkipEfficiency = true
	// The private levels are architecturally fixed at plain LRU (the
	// paper varies only the LLC policy), so they are built directly
	// rather than through the internal/exp registry — the one sanctioned
	// exception in scripts/check_construction.sh. The direct call also
	// keeps cache.PlainLRU devirtualization on the L1/L2 hit path.
	return &Core{
		L1:         cache.New(l1, policy.NewLRU()),
		L2:         cache.New(l2, policy.NewLRU()),
		LLC:        llc,
		writebacks: cfg.PropagateWritebacks,
	}
}

// LevelStats aggregates one core stack's counters across its levels.
// Each level's Stats satisfies Hits+Misses == Accesses; the LLC entry
// is shared-cache-wide when the LLC is shared.
type LevelStats struct {
	L1  cache.Stats
	L2  cache.Stats
	LLC cache.Stats
}

// Total sums the counters across levels — the campaign-level "work
// simulated" figure the observability layer reports.
func (s LevelStats) Total() cache.Stats {
	return s.L1.Add(s.L2).Add(s.LLC)
}

// Stats returns the stack's per-level counters (a zero LLC entry for
// capture-only cores with no LLC).
func (c *Core) Stats() LevelStats {
	s := LevelStats{L1: c.L1.Stats(), L2: c.L2.Stats()}
	if c.LLC != nil {
		s.LLC = c.LLC.Stats()
	}
	return s
}

// CaptureLLC registers fn to observe the core's LLC access stream.
func (c *Core) CaptureLLC(fn func(a mem.Access)) { c.onLLC = fn }

// OnLLCMiss registers fn to observe the core's LLC demand misses.
func (c *Core) OnLLCMiss(fn func(a mem.Access)) { c.onLLCMiss = fn }

// OnLLCEvict registers fn to observe the core's LLC evictions.
func (c *Core) OnLLCEvict(fn func(evictedAddr uint64)) { c.onLLCEvict = fn }

// Access sends one demand reference down the hierarchy and reports the
// level that satisfied it. All levels allocate on miss (subject to the
// LLC policy's bypass decision). Dirty evictions are counted in each
// cache's statistics; write-back traffic does not consume LLC predictor
// bandwidth (writebacks carry no program counter, so the paper's
// predictors ignore them).
func (c *Core) Access(a mem.Access) Level {
	c.pendingGap += uint64(a.Gap) + 1
	r1 := c.L1.Access(a)
	if c.writebacks && r1.EvictedDirty {
		rwb := c.writeback(c.L2, r1.WritebackAddr, a.Thread)
		if rwb.EvictedDirty && c.LLC != nil {
			c.writeback(c.LLC, rwb.WritebackAddr, a.Thread)
		}
	}
	if r1.Hit {
		return LevelL1
	}
	r2 := c.L2.Access(a)
	if c.writebacks && r2.EvictedDirty && c.LLC != nil {
		c.writeback(c.LLC, r2.WritebackAddr, a.Thread)
	}
	if r2.Hit {
		return LevelL2
	}
	llcA := a
	gap := c.pendingGap - 1
	if gap > 1<<32-1 {
		gap = 1<<32 - 1
	}
	llcA.Gap = uint32(gap)
	c.pendingGap = 0
	if c.onLLC != nil {
		c.onLLC(llcA)
	}
	if c.LLC == nil {
		// Capture-only core: the LLC-bound record (gap rewritten) was
		// still delivered to the observer above.
		return LevelMemory
	}
	res := c.LLC.Access(llcA)
	if res.Evicted && c.onLLCEvict != nil {
		c.onLLCEvict(res.EvictedAddr)
	}
	if res.Hit {
		return LevelLLC
	}
	if c.onLLCMiss != nil {
		c.onLLCMiss(llcA)
	}
	return LevelMemory
}

// writeback delivers a dirty victim to the next level as a Writeback
// access. Lower-level dirty victims it displaces propagate no further
// here; the LLC's own dirty victims go to memory (counted in its
// statistics).
func (c *Core) writeback(to *cache.Cache, addr uint64, thread uint8) cache.Result {
	return to.Access(mem.Access{Addr: addr, Write: true, Writeback: true, Thread: thread})
}
