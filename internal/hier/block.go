package hier

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// This file is the hierarchy's block-granular surface. The drive loops
// in internal/sim hand whole blocks of demand accesses to a core at
// once: FilterBlock runs the private L1/L2 levels as one tight loop
// (the multicore pre-filter, safe to run per-core in parallel), and
// AccessBlock adds the LLC leg for single-owner LLCs. Both produce
// state, statistics, and observer behaviour byte-identical to repeated
// Access calls — pinned by the goldens and the policytest batch
// differential — because no level ever reads another level's state
// between accesses once write-back propagation is off.

// Filtered is one access's outcome through the private levels, in the
// form the ordered LLC merge consumes: which private level satisfied it
// (or the gap-rewritten LLC-bound record when neither did), plus the
// flag bits a merge loop needs to reconstruct the exact private-level
// statistics of the consumed prefix of a pre-filtered stream.
type Filtered struct {
	// LLC is the gap-rewritten LLC-bound record; meaningful only when
	// FLLCBound is set.
	LLC mem.Access
	// Gap is the access's original instruction gap — the timing model's
	// input, unchanged by LLC gap rewriting.
	Gap uint32
	// Flags holds the F* outcome bits.
	Flags uint16
}

// Filtered outcome flags. FL1Evict/FL1Writeback (and the L2 pair)
// record eviction side effects so a consumer can replay Evictions and
// Writebacks counters without re-running the caches.
const (
	// FWrite: the access was a store.
	FWrite uint16 = 1 << iota
	// FDep: the access was a dependent (pointer-chasing) load.
	FDep
	// FL1Hit: the L1 satisfied the access; no other level saw it.
	FL1Hit
	// FL1Evict: the L1 miss evicted a valid block.
	FL1Evict
	// FL1Writeback: the evicted L1 block was dirty.
	FL1Writeback
	// FL2Hit: the L2 satisfied the access (implies L1 miss).
	FL2Hit
	// FL2Evict: the L2 miss evicted a valid block.
	FL2Evict
	// FL2Writeback: the evicted L2 block was dirty.
	FL2Writeback
	// FLLCBound: both private levels missed; LLC holds the record to
	// deliver to the last-level cache.
	FLLCBound
)

// PrivateLevel returns the level that satisfied a filtered access, with
// LevelMemory standing in for "LLC-bound" (the LLC leg has not run yet).
func (f *Filtered) PrivateLevel() Level {
	switch {
	case f.Flags&FL1Hit != 0:
		return LevelL1
	case f.Flags&FL2Hit != 0:
		return LevelL2
	default:
		return LevelMemory
	}
}

// FilterBlock runs a block of demand accesses through the private
// levels only, writing one Filtered record per access into out (which
// must satisfy len(out) >= len(as)). It is the block-granular form of a
// capture-only core: L1/L2 state, statistics, and LLC gap rewriting
// advance exactly as per-access Access calls would, but the LLC — if
// any — is untouched, and LLC-bound records are returned in the out
// array rather than delivered anywhere. Because the caller owns
// delivering the LLC leg, FilterBlock requires PropagateWritebacks off
// (the capture and multicore configurations): propagated write-backs
// interleave levels in ways a per-access record cannot carry.
func (c *Core) FilterBlock(as []mem.Access, out []Filtered) {
	if c.writebacks {
		panic("hier: FilterBlock requires PropagateWritebacks off")
	}
	out = out[:len(as)] // hoist the bounds check out of the loop
	for i := range as {
		a := &as[i]
		c.pendingGap += uint64(a.Gap) + 1
		f := Filtered{Gap: a.Gap}
		if a.Write {
			f.Flags |= FWrite
		}
		if a.DependentLoad {
			f.Flags |= FDep
		}
		hit, ev, evd, _ := c.L1.AccessPrivate(*a)
		if hit {
			f.Flags |= FL1Hit
			out[i] = f
			continue
		}
		if ev {
			f.Flags |= FL1Evict
		}
		if evd {
			f.Flags |= FL1Writeback
		}
		hit, ev, evd, _ = c.L2.AccessPrivate(*a)
		if hit {
			f.Flags |= FL2Hit
			out[i] = f
			continue
		}
		if ev {
			f.Flags |= FL2Evict
		}
		if evd {
			f.Flags |= FL2Writeback
		}
		f.Flags |= FLLCBound
		llcA := *a
		gap := c.pendingGap - 1
		if gap > 1<<32-1 {
			gap = 1<<32 - 1
		}
		llcA.Gap = uint32(gap)
		c.pendingGap = 0
		f.LLC = llcA
		out[i] = f
	}
}

// AccessBlock sends a block of demand accesses down the hierarchy,
// writing the level that satisfied each into levels (len(levels) >=
// len(as)). It is exactly equivalent to calling Access per element:
// when the core has observers, write-back propagation, or no LLC —
// configurations where per-access interleaving is observable — it
// degenerates to that loop; otherwise the private levels run as one
// FilterBlock pass and only the LLC-bound subsequence touches the LLC,
// which is safe because the L1, L2, and LLC each see their own access
// subsequence in the same order either way and never read one
// another's state between accesses.
// BlockCapable reports whether the block-granular path is fully
// engaged: write-back propagation off, an LLC present, and no
// per-access observers. When false, AccessBlock degenerates to the
// scalar loop, and drive loops that want to pipeline FilterBlock
// against the LLC leg must not.
func (c *Core) BlockCapable() bool {
	return !c.writebacks && c.LLC != nil &&
		c.onLLC == nil && c.onLLCMiss == nil && c.onLLCEvict == nil
}

func (c *Core) AccessBlock(as []mem.Access, levels []Level) {
	if len(as) == 0 {
		return
	}
	if !c.BlockCapable() {
		levels = levels[:len(as)]
		for i := range as {
			levels[i] = c.Access(as[i])
		}
		return
	}
	if cap(c.filt) < len(as) {
		c.filt = make([]Filtered, len(as))
		c.llcAs = make([]mem.Access, len(as))
		c.llcRs = make([]cache.Result, len(as))
		c.llcIdx = make([]int32, len(as))
	}
	filt := c.filt[:len(as)]
	c.FilterBlock(as, filt)
	levels = levels[:len(as)]
	n := 0
	for i := range filt {
		switch {
		case filt[i].Flags&FL1Hit != 0:
			levels[i] = LevelL1
		case filt[i].Flags&FL2Hit != 0:
			levels[i] = LevelL2
		default:
			levels[i] = LevelMemory
			c.llcAs[n] = filt[i].LLC
			c.llcIdx[n] = int32(i)
			n++
		}
	}
	c.LLC.AccessBatch(c.llcAs[:n], c.llcRs[:n])
	for j := 0; j < n; j++ {
		if c.llcRs[j].Hit {
			levels[c.llcIdx[j]] = LevelLLC
		}
	}
}
