package dbrb

import "sort"

// Per-PC death attribution: the introspection view of the PC→death
// correlation the paper's predictors exploit. When enabled, the policy
// partitions its aggregate Accuracy counters by program counter —
// every prediction (and dead verdict) is charged to the PC of the
// access predicted on, every false positive to the PC whose prediction
// set the standing dead bit — and additionally charges each eviction
// to the PC that filled the evicted block.
//
// Attribution is strictly opt-in (EnableAttribution, called before the
// policy's Reset): when off, the only cost on the access path is one
// nil check per hook, and the steady-state LLC access stays
// allocation-free (pinned by TestLLCAccessSteadyStateAllocs).

// PCStats is one program counter's share of the policy's activity.
type PCStats struct {
	// Predictions, Positives and FalsePositives partition the
	// aggregate Accuracy counters of the same names.
	Predictions    uint64
	Positives      uint64
	FalsePositives uint64
	// Evictions counts evictions of blocks this PC filled. Blocks
	// filled by writebacks (which carry no PC) are charged to PC 0.
	Evictions uint64
}

func (s *PCStats) add(o PCStats) {
	s.Predictions += o.Predictions
	s.Positives += o.Positives
	s.FalsePositives += o.FalsePositives
	s.Evictions += o.Evictions
}

// PCRow is one attribution table entry.
type PCRow struct {
	PC uint64
	PCStats
}

// Attribution is the per-PC table plus the per-line provenance state
// that makes exact attribution possible: which PC filled each line and
// which PC's prediction set each line's standing dead bit. The table is
// an index map over a flat arena of PCStats rather than a map of
// pointers: counter bumps for the (few, hot) distinct PCs then land in
// one contiguous array, and the PC set a workload touches stays small,
// so the map is consulted only to translate PC → arena index.
type Attribution struct {
	index map[uint64]int32
	arena []PCStats
	pcs   []uint64 // arena index → PC (for iteration)
	// fillPC is the PC of the demand access that filled each line (0
	// for writeback fills and untracked lines).
	fillPC []uint64
	// deadPC is the PC whose prediction set the line's standing dead
	// bit; meaningful only while the policy's dead bit is set.
	deadPC []uint64
	ways   int
}

func newAttribution(sets, ways int) *Attribution {
	return &Attribution{
		index:  make(map[uint64]int32),
		fillPC: make([]uint64, sets*ways),
		deadPC: make([]uint64, sets*ways),
		ways:   ways,
	}
}

func (at *Attribution) at(pc uint64) *PCStats {
	i, ok := at.index[pc]
	if !ok {
		i = int32(len(at.arena))
		at.index[pc] = i
		at.arena = append(at.arena, PCStats{})
		at.pcs = append(at.pcs, pc)
	}
	return &at.arena[i]
}

// predicted charges one prediction (and, when dead, one positive) to
// pc.
func (at *Attribution) predicted(pc uint64, dead bool) {
	s := at.at(pc)
	s.Predictions++
	if dead {
		s.Positives++
	}
}

// falsePositive charges a false positive to the PC that made the
// standing dead prediction.
func (at *Attribution) falsePositive(pc uint64) { at.at(pc).FalsePositives++ }

// evicted charges an eviction to the PC that filled the line.
func (at *Attribution) evicted(pc uint64) { at.at(pc).Evictions++ }

// Totals sums the table. By construction Predictions, Positives and
// FalsePositives equal the policy's aggregate Accuracy counters — the
// reconciliation invariant the report generator and tests check.
func (at *Attribution) Totals() PCStats {
	var t PCStats
	for i := range at.arena {
		t.add(at.arena[i])
	}
	return t
}

// Rows returns the whole table in deterministic order: dead verdicts
// descending, then predictions descending, then PC ascending.
func (at *Attribution) Rows() []PCRow {
	rows := make([]PCRow, 0, len(at.arena))
	for i := range at.arena {
		rows = append(rows, PCRow{PC: at.pcs[i], PCStats: at.arena[i]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Positives != rows[j].Positives {
			return rows[i].Positives > rows[j].Positives
		}
		if rows[i].Predictions != rows[j].Predictions {
			return rows[i].Predictions > rows[j].Predictions
		}
		return rows[i].PC < rows[j].PC
	})
	return rows
}

// TopK returns the k highest-ranked rows plus, when the table is
// larger, a rollup row aggregating the remainder (rolled reports
// whether one exists), so column sums over rows+rollup always equal
// Totals.
func (at *Attribution) TopK(k int) (rows []PCRow, rollup PCRow, rolled bool) {
	rows = at.Rows()
	if k <= 0 || len(rows) <= k {
		return rows, PCRow{}, false
	}
	var rest PCRow
	for _, r := range rows[k:] {
		rest.PCStats.add(r.PCStats)
	}
	return rows[:k], rest, true
}

// EnableAttribution turns on per-PC attribution. Call it before the
// policy is handed to cache.New: the table and per-line provenance
// state are sized at the policy's Reset, so enabling afterwards takes
// effect only at the next Reset.
func (p *Policy) EnableAttribution() { p.attrEnabled = true }

// Attribution returns the per-PC table, or nil when attribution was
// never enabled.
func (p *Policy) Attribution() *Attribution { return p.attr }
