// Package dbrb implements the paper's dead-block replacement and bypass
// policy (Section V): a cache management policy that victimizes
// predicted-dead blocks before falling back on a default policy (LRU or
// random), and bypasses blocks predicted dead on arrival.
package dbrb

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
)

// Policy drives a default replacement policy with a dead block
// predictor. It implements cache.Policy.
type Policy struct {
	base cache.Policy
	pred predictor.Predictor

	ways int
	// flags is the per-line metadata arena, one byte per LLC line:
	// fDead is the dead bit (the 1 bit/line of cache metadata), and
	// fTracked marks lines whose predictor per-block state is valid —
	// demand fills set it, writeback fills clear it, so evictions of
	// writeback-filled lines do not train the predictor on stale state.
	// One flat byte array keeps the victim scan to one load per way.
	flags []uint8

	acc Accuracy

	// attr is the per-PC death-attribution table (see attribution.go);
	// nil unless EnableAttribution was called before Reset. Every hook
	// below guards on the nil so the disabled access path pays one
	// predictable branch and allocates nothing.
	attr        *Attribution
	attrEnabled bool
}

// Per-line flag bits in Policy.flags.
const (
	fDead uint8 = 1 << iota
	fTracked
)

// Accuracy tallies the prediction quality measures of the paper's
// Figure 9. Coverage is positive predictions over all predictions (one
// prediction per LLC access); a false positive is recorded when a block
// standing predicted dead is referenced again while still cached.
type Accuracy struct {
	// Predictions is the number of predictions made (one per access).
	Predictions uint64
	// Positives is the number of dead predictions.
	Positives uint64
	// FalsePositives counts hits to blocks whose dead bit was set.
	FalsePositives uint64
}

// Coverage returns Positives/Predictions.
func (a Accuracy) Coverage() float64 {
	if a.Predictions == 0 {
		return 0
	}
	return float64(a.Positives) / float64(a.Predictions)
}

// FalsePositiveRate returns FalsePositives/Predictions — the fraction of
// cache accesses on which a wrong dead prediction stood, the paper's
// Figure 9 metric.
func (a Accuracy) FalsePositiveRate() float64 {
	if a.Predictions == 0 {
		return 0
	}
	return float64(a.FalsePositives) / float64(a.Predictions)
}

// New wraps base with predictor-driven replacement and bypass. The
// resulting policy's name is "<pred> DBRB/<base>".
func New(base cache.Policy, pred predictor.Predictor) *Policy {
	return &Policy{base: base, pred: pred}
}

// Name implements cache.Policy.
func (p *Policy) Name() string {
	return p.pred.Name() + " DBRB/" + p.base.Name()
}

// Base returns the default policy beneath the optimization.
func (p *Policy) Base() cache.Policy { return p.base }

// Predictor returns the driving predictor.
func (p *Policy) Predictor() predictor.Predictor { return p.pred }

// Accuracy returns the prediction-quality tallies so far.
func (p *Policy) Accuracy() Accuracy { return p.acc }

// Reset implements cache.Policy.
func (p *Policy) Reset(sets, ways int) {
	p.ways = ways
	p.flags = make([]uint8, sets*ways)
	p.base.Reset(sets, ways)
	p.pred.Reset(sets, ways)
	p.acc = Accuracy{}
	p.attr = nil
	if p.attrEnabled {
		p.attr = newAttribution(sets, ways)
	}
}

func (p *Policy) idx(set uint32, way int) int { return int(set)*p.ways + way }

// OnAccess implements cache.Policy: the predictor observes every demand
// access (the sampling predictor maintains its sampler here).
// Writebacks carry no PC and are invisible to the predictor.
func (p *Policy) OnAccess(set uint32, a mem.Access) {
	p.base.OnAccess(set, a)
	if !a.Writeback {
		p.pred.OnAccess(set, a)
	}
}

// Bypass implements cache.Policy: a block predicted dead on arrival is
// not placed. Writebacks are never bypassed (dropping one would lose
// the only copy of dirty data).
func (p *Policy) Bypass(set uint32, a mem.Access) bool {
	if a.Writeback {
		return false
	}
	dead := p.pred.PredictArriving(set, a)
	p.acc.Predictions++
	if dead {
		p.acc.Positives++
	}
	if p.attr != nil {
		p.attr.predicted(a.PC, dead)
	}
	return dead
}

// Aging is implemented by predictors whose predictions mature with
// idle time rather than only at accesses (the access interval
// predictor): DeadNow re-evaluates a resident block's deadness at
// victim-selection time.
type Aging interface {
	DeadNow(set uint32, way int) bool
}

// Victim implements cache.Policy: a predicted-dead block is evicted
// first — the one the base policy ranks closest to eviction when several
// are dead — falling back on the base policy's victim otherwise.
func (p *Policy) Victim(set uint32, a mem.Access) int {
	ranked, _ := p.base.(policy.Ranked)
	aging, _ := p.pred.(Aging)
	victim, bestRank := -1, -1
	for w := 0; w < p.ways; w++ {
		if p.flags[p.idx(set, w)]&fDead == 0 && (aging == nil || !aging.DeadNow(set, w)) {
			continue
		}
		rank := 0
		if ranked != nil {
			rank = ranked.Rank(set, w)
		}
		if rank > bestRank {
			victim, bestRank = w, rank
		}
	}
	if victim >= 0 {
		return victim
	}
	return p.base.Victim(set, a)
}

// OnHit implements cache.Policy: a hit on a block standing predicted
// dead is a false positive; the block's dead bit then refreshes from the
// predictor. Writeback hits update nothing in the predictor and leave
// the dead bit as it stands (a writeback is not a use of the data).
func (p *Policy) OnHit(set uint32, way int, a mem.Access) {
	if a.Writeback {
		p.base.OnHit(set, way, a)
		return
	}
	i := p.idx(set, way)
	if p.flags[i]&fTracked == 0 {
		// First demand touch of a writeback-filled line: the predictor
		// starts tracking it as if filled now.
		dead := p.pred.OnFill(set, way, a)
		p.flags[i] = fTracked
		p.acc.Predictions++
		if dead {
			p.flags[i] = fTracked | fDead
			p.acc.Positives++
		}
		if p.attr != nil {
			p.attr.predicted(a.PC, dead)
			p.attr.fillPC[i] = a.PC
			if dead {
				p.attr.deadPC[i] = a.PC
			}
		}
		p.base.OnHit(set, way, a)
		return
	}
	if p.flags[i]&fDead != 0 {
		p.acc.FalsePositives++
		if p.attr != nil {
			p.attr.falsePositive(p.attr.deadPC[i])
		}
	}
	d := p.pred.OnHit(set, way, a)
	p.acc.Predictions++
	if d {
		p.acc.Positives++
		p.flags[i] = fTracked | fDead
	} else {
		p.flags[i] = fTracked
	}
	if p.attr != nil {
		p.attr.predicted(a.PC, d)
		if d {
			p.attr.deadPC[i] = a.PC
		}
	}
	p.base.OnHit(set, way, a)
}

// OnFill implements cache.Policy. Writeback fills start with a clear
// dead bit and do not touch the predictor.
func (p *Policy) OnFill(set uint32, way int, a mem.Access) {
	i := p.idx(set, way)
	if a.Writeback {
		p.flags[i] = 0
		if p.attr != nil {
			p.attr.fillPC[i] = 0
		}
	} else {
		dead := p.pred.OnFill(set, way, a)
		p.flags[i] = fTracked
		if dead {
			p.flags[i] = fTracked | fDead
		}
		if p.attr != nil {
			p.attr.fillPC[i] = a.PC
			if dead {
				p.attr.deadPC[i] = a.PC
			}
		}
	}
	p.base.OnFill(set, way, a)
}

// OnEvict implements cache.Policy: the predictor learns from every
// eviction, including those it caused itself (Section V-B finds this
// feedback mildly beneficial).
func (p *Policy) OnEvict(set uint32, way int) {
	i := p.idx(set, way)
	if p.flags[i]&fTracked != 0 {
		p.pred.OnEvict(set, way)
	}
	p.flags[i] = 0
	if p.attr != nil {
		p.attr.evicted(p.attr.fillPC[i])
		p.attr.fillPC[i] = 0
	}
	p.base.OnEvict(set, way)
}

// PrefetchVictim implements cache.PrefetchPlacer: prefetches may only
// displace predicted-dead blocks (the base policy's rank breaking
// ties), never live ones.
func (p *Policy) PrefetchVictim(set uint32) (int, bool) {
	ranked, _ := p.base.(policy.Ranked)
	victim, bestRank := -1, -1
	for w := 0; w < p.ways; w++ {
		if p.flags[p.idx(set, w)]&fDead == 0 {
			continue
		}
		rank := 0
		if ranked != nil {
			rank = ranked.Rank(set, w)
		}
		if rank > bestRank {
			victim, bestRank = w, rank
		}
	}
	return victim, victim >= 0
}

// IsDead reports whether the block at (set, way) currently stands
// predicted dead. Applications that filter on deadness at eviction
// time (e.g. a dead-block-filtered victim cache) read it from an
// OnEvict wrapper before this policy clears the bit.
func (p *Policy) IsDead(set uint32, way int) bool {
	return p.flags[p.idx(set, way)]&fDead != 0
}

// DeadCount returns how many blocks currently stand predicted dead (for
// tests and diagnostics).
func (p *Policy) DeadCount() int {
	n := 0
	for _, f := range p.flags {
		if f&fDead != 0 {
			n++
		}
	}
	return n
}
