package dbrb

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
)

// hostilePredictor predicts everything dead — maximal damage for the
// duel to contain.
type hostilePredictor struct{ scriptedPredictor }

func (p *hostilePredictor) pred(mem.Access) bool                    { return true }
func (p *hostilePredictor) PredictArriving(uint32, mem.Access) bool { return true }
func (p *hostilePredictor) OnHit(uint32, int, mem.Access) bool      { return true }
func (p *hostilePredictor) OnFill(uint32, int, mem.Access) bool     { return true }

// reuseTrace drives a cache with a fitting, heavily reused working set
// and returns the hit count.
func reuseTrace(c *cache.Cache, blocks, laps int) uint64 {
	for l := 0; l < laps; l++ {
		for b := 0; b < blocks; b++ {
			c.Access(mem.Access{Addr: uint64(b) * mem.BlockSize})
		}
	}
	return c.Stats().Hits
}

func TestDuelingContainsHostilePredictor(t *testing.T) {
	cfg := cache.Config{Name: "t", SizeBytes: 256 << 10, Ways: 16} // 4096 blocks
	const blocks, laps = 2048, 30                                  // fits comfortably

	lruHits := reuseTrace(cache.New(cfg, policy.NewLRU()), blocks, laps)
	plainHits := reuseTrace(cache.New(cfg, New(policy.NewLRU(), &hostilePredictor{})), blocks, laps)
	dueledHits := reuseTrace(cache.New(cfg, NewDueling(policy.NewLRU(), &hostilePredictor{})), blocks, laps)

	// The hostile predictor bypasses everything: plain DBRB collapses
	// to (almost) no hits.
	if plainHits > lruHits/10 {
		t.Fatalf("hostile predictor not hostile enough: %d vs LRU %d", plainHits, lruHits)
	}
	// The duel must recover most of the LRU hits.
	if dueledHits < lruHits*8/10 {
		t.Errorf("dueled hits %d below 80%% of LRU hits %d", dueledHits, lruHits)
	}
}

func TestDuelingKeepsGoodPredictorWins(t *testing.T) {
	// With the scripted (accurate) predictor, dueling must not destroy
	// the dead-block wins: a stream of one-touch blocks at the dead PC
	// bypasses under both plain and dueled DBRB.
	cfg := cache.Config{Name: "t", SizeBytes: 64 << 10, Ways: 16}
	run := func(pol cache.Policy) uint64 {
		c := cache.New(cfg, pol)
		// Hot fitting set, interleaved with one-shot junk at deadPC.
		junk := uint64(1) << 40
		for l := 0; l < 40; l++ {
			for b := 0; b < 512; b++ {
				c.Access(mem.Access{PC: 0x1, Addr: uint64(b) * mem.BlockSize})
			}
			for j := 0; j < 1024; j++ {
				c.Access(mem.Access{PC: deadPC, Addr: junk})
				junk += mem.BlockSize
			}
		}
		return c.Stats().Hits
	}
	lru := run(policy.NewLRU())
	dueled := run(NewDueling(policy.NewLRU(), &scriptedPredictor{deadPC: deadPC}))
	if dueled <= lru {
		t.Errorf("dueled DBRB hits %d not above LRU %d with an accurate predictor", dueled, lru)
	}
}

func TestDuelingName(t *testing.T) {
	p := NewDueling(policy.NewLRU(), &scriptedPredictor{})
	if p.Name() != "Dueling scripted DBRB/LRU" {
		t.Errorf("name = %q", p.Name())
	}
}
