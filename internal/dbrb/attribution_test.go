package dbrb

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
)

// attrCache builds a small LLC under a sampling DBRB policy with
// attribution enabled, returning both.
func attrCache(tb testing.TB) (*cache.Cache, *Policy) {
	tb.Helper()
	pol := New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	pol.EnableAttribution()
	c := cache.New(cache.Config{Name: "LLC", SizeBytes: 64 << 10, Ways: 16}, pol)
	return c, pol
}

// drive pushes a deterministic mixed-PC reference stream through the
// cache: a few hot PCs with very different reuse behavior, so the
// predictor actually issues dead verdicts and false positives.
func drive(c *cache.Cache, accesses int) {
	const (
		pcStream = 0x400100 // streaming: every block touched once
		pcLoop   = 0x400200 // tight reuse: small working set, rehit often
		pcScan   = 0x400300 // large scan with eventual rereference
	)
	var streamAddr, scanAddr uint64
	for i := 0; i < accesses; i++ {
		switch i % 4 {
		case 0:
			streamAddr += mem.BlockSize
			c.Access(mem.Access{Addr: 0x1000_0000 + streamAddr, PC: pcStream, Gap: 3})
		case 1, 2:
			c.Access(mem.Access{Addr: 0x2000_0000 + uint64(i%64)*mem.BlockSize, PC: pcLoop, Gap: 1})
		case 3:
			scanAddr = (scanAddr + 7*mem.BlockSize) % (1 << 22)
			c.Access(mem.Access{Addr: 0x3000_0000 + scanAddr, PC: pcScan, Gap: 5})
		}
	}
}

// TestAttributionReconciles is the core invariant: the per-PC table's
// prediction columns sum exactly to the policy's aggregate Accuracy
// counters, and eviction attribution sums to the cache's eviction
// count.
func TestAttributionReconciles(t *testing.T) {
	c, pol := attrCache(t)
	drive(c, 200_000)

	at := pol.Attribution()
	if at == nil {
		t.Fatal("attribution enabled but table is nil")
	}
	tot := at.Totals()
	acc := pol.Accuracy()
	if tot.Predictions != acc.Predictions || tot.Positives != acc.Positives ||
		tot.FalsePositives != acc.FalsePositives {
		t.Errorf("attribution totals (%d,%d,%d) != aggregate accuracy (%d,%d,%d)",
			tot.Predictions, tot.Positives, tot.FalsePositives,
			acc.Predictions, acc.Positives, acc.FalsePositives)
	}
	if acc.Predictions == 0 || acc.Positives == 0 {
		t.Fatalf("stream produced no dead verdicts (acc=%+v); the fixture is too tame", acc)
	}
	if got := c.Stats().Evictions; tot.Evictions != got {
		t.Errorf("attributed evictions %d != cache evictions %d", tot.Evictions, got)
	}
}

// TestAttributionRowsDeterministicOrder checks the export ordering
// contract (positives desc, predictions desc, PC asc) and that TopK's
// rollup preserves the totals.
func TestAttributionRowsDeterministicOrder(t *testing.T) {
	c, pol := attrCache(t)
	drive(c, 100_000)
	at := pol.Attribution()
	rows := at.Rows()
	if len(rows) < 2 {
		t.Fatalf("want multiple PCs in the table, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Positives < b.Positives ||
			(a.Positives == b.Positives && a.Predictions < b.Predictions) ||
			(a.Positives == b.Positives && a.Predictions == b.Predictions && a.PC >= b.PC) {
			t.Errorf("rows %d,%d out of order: %+v then %+v", i-1, i, a, b)
		}
	}

	top, rollup, rolled := at.TopK(1)
	if len(top) != 1 || !rolled {
		t.Fatalf("TopK(1) = %d rows, rolled=%v; want 1 row with rollup", len(top), rolled)
	}
	var sum PCStats
	sum.add(top[0].PCStats)
	sum.add(rollup.PCStats)
	if sum != at.Totals() {
		t.Errorf("TopK(1)+rollup = %+v, want totals %+v", sum, at.Totals())
	}
	if all, _, rolledAll := at.TopK(len(rows)); rolledAll || len(all) != len(rows) {
		t.Errorf("TopK(len) rolled=%v len=%d, want no rollup and %d rows", rolledAll, len(all), len(rows))
	}
}

// TestAttributionDisabledIsNil pins the gate: without EnableAttribution
// the policy keeps no table, and behavior (accuracy counters) is
// byte-for-byte identical to an attributed run over the same stream.
func TestAttributionDisabledIsNil(t *testing.T) {
	plain := New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	cPlain := cache.New(cache.Config{Name: "LLC", SizeBytes: 64 << 10, Ways: 16}, plain)
	drive(cPlain, 100_000)
	if plain.Attribution() != nil {
		t.Error("attribution table exists without EnableAttribution")
	}

	cAttr, withAttr := attrCache(t)
	drive(cAttr, 100_000)
	if plain.Accuracy() != withAttr.Accuracy() {
		t.Errorf("attribution changed the simulation: accuracy %+v vs %+v",
			plain.Accuracy(), withAttr.Accuracy())
	}
	if cPlain.Stats() != cAttr.Stats() {
		t.Errorf("attribution changed the simulation: stats %+v vs %+v",
			cPlain.Stats(), cAttr.Stats())
	}
}

// TestAttributionDueling checks the embedded policy path: a Dueling
// wrapper's attribution reconciles the same way (its base-side sets
// still record predictions without acting on them).
func TestAttributionDueling(t *testing.T) {
	pol := NewDueling(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	pol.EnableAttribution()
	c := cache.New(cache.Config{Name: "LLC", SizeBytes: 64 << 10, Ways: 16}, pol)
	drive(c, 100_000)
	tot := pol.Attribution().Totals()
	acc := pol.Accuracy()
	if tot.Predictions != acc.Predictions || tot.Positives != acc.Positives ||
		tot.FalsePositives != acc.FalsePositives {
		t.Errorf("dueling attribution totals (%d,%d,%d) != accuracy (%d,%d,%d)",
			tot.Predictions, tot.Positives, tot.FalsePositives,
			acc.Predictions, acc.Positives, acc.FalsePositives)
	}
}

// TestAttributionWritebackFills pins the PC-0 convention: lines filled
// by writebacks (no PC) charge their eventual eviction to PC 0.
func TestAttributionWritebackFills(t *testing.T) {
	pol := New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	pol.EnableAttribution()
	c := cache.New(cache.Config{Name: "LLC", SizeBytes: 4 << 10, Ways: 4}, pol)
	// Fill a set with writebacks, then force evictions with demand
	// misses mapping to the same sets.
	for i := 0; i < 64; i++ {
		c.Access(mem.Access{Addr: uint64(i) * mem.BlockSize, Write: true, Writeback: true})
	}
	for i := 0; i < 256; i++ {
		c.Access(mem.Access{Addr: 1<<20 + uint64(i)*mem.BlockSize, PC: 0x400500})
	}
	at := pol.Attribution()
	i, ok := at.index[0]
	if !ok || at.arena[i].Evictions == 0 {
		t.Error("no evictions charged to PC 0 after writeback fills were displaced")
	}
}
