package dbrb

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/power"
)

// scriptedPredictor predicts dead exactly for one PC.
type scriptedPredictor struct {
	deadPC uint64
}

func (p *scriptedPredictor) Name() string                { return "scripted" }
func (p *scriptedPredictor) Reset(int, int)              {}
func (p *scriptedPredictor) OnAccess(uint32, mem.Access) {}
func (p *scriptedPredictor) OnEvict(uint32, int)         {}
func (p *scriptedPredictor) Storage() []power.Structure  { return nil }
func (p *scriptedPredictor) pred(a mem.Access) bool      { return a.PC == p.deadPC }
func (p *scriptedPredictor) PredictArriving(_ uint32, a mem.Access) bool {
	return p.pred(a)
}
func (p *scriptedPredictor) OnHit(_ uint32, _ int, a mem.Access) bool  { return p.pred(a) }
func (p *scriptedPredictor) OnFill(_ uint32, _ int, a mem.Access) bool { return p.pred(a) }

const deadPC = 0xD00D

func newTestCache() (*cache.Cache, *Policy) {
	pol := New(policy.NewLRU(), &scriptedPredictor{deadPC: deadPC})
	// 1 set x 4 ways.
	c := cache.New(cache.Config{Name: "t", SizeBytes: 4 * mem.BlockSize, Ways: 4}, pol)
	return c, pol
}

func addr(i int) uint64 { return uint64(i) * mem.BlockSize }

func TestBypassOnDeadArrival(t *testing.T) {
	c, pol := newTestCache()
	r := c.Access(mem.Access{PC: deadPC, Addr: addr(1)})
	if !r.Bypassed {
		t.Fatal("dead-on-arrival block was placed")
	}
	if pol.Accuracy().Positives != 1 {
		t.Errorf("positives = %d, want 1", pol.Accuracy().Positives)
	}
}

func TestDeadBlockVictimizedFirst(t *testing.T) {
	c, _ := newTestCache()
	// Fill the set with live blocks, touch one at the dead PC, then
	// miss: the dead-marked block must be the victim even though it is
	// the MRU.
	for i := 0; i < 4; i++ {
		c.Access(mem.Access{PC: 0x1, Addr: addr(i)})
	}
	c.Access(mem.Access{PC: deadPC, Addr: addr(2)}) // hit; marked dead; MRU
	c.Access(mem.Access{PC: 0x1, Addr: addr(9)})    // miss; needs a victim
	if c.Contains(addr(2)) {
		t.Error("dead-marked block survived a replacement")
	}
	if !c.Contains(addr(0)) {
		t.Error("LRU live block was evicted instead of the dead block")
	}
}

func TestDeadClosestToLRUWins(t *testing.T) {
	c, _ := newTestCache()
	for i := 0; i < 4; i++ {
		c.Access(mem.Access{PC: 0x1, Addr: addr(i)})
	}
	// Mark blocks 1 and 3 dead; block 1 is older (closer to LRU).
	c.Access(mem.Access{PC: deadPC, Addr: addr(1)})
	c.Access(mem.Access{PC: deadPC, Addr: addr(3)})
	c.Access(mem.Access{PC: 0x1, Addr: addr(9)})
	if c.Contains(addr(1)) {
		t.Error("dead block closest to LRU not chosen")
	}
	if !c.Contains(addr(3)) {
		t.Error("the MRU-side dead block was chosen instead")
	}
}

func TestFallbackToBasePolicy(t *testing.T) {
	c, _ := newTestCache()
	for i := 0; i < 4; i++ {
		c.Access(mem.Access{PC: 0x1, Addr: addr(i)})
	}
	// No dead blocks: the base LRU victim (block 0) must go.
	c.Access(mem.Access{PC: 0x1, Addr: addr(9)})
	if c.Contains(addr(0)) {
		t.Error("base LRU victim not evicted")
	}
}

func TestFalsePositiveAccounting(t *testing.T) {
	c, pol := newTestCache()
	c.Access(mem.Access{PC: deadPC, Addr: addr(1)}) // bypassed (miss)
	c.Access(mem.Access{PC: 0x1, Addr: addr(1)})    // placed
	c.Access(mem.Access{PC: deadPC, Addr: addr(1)}) // hit; marked dead
	c.Access(mem.Access{PC: 0x1, Addr: addr(1)})    // hit on dead mark: FP
	acc := pol.Accuracy()
	if acc.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", acc.FalsePositives)
	}
	if acc.Predictions != 4 {
		t.Errorf("predictions = %d, want 4", acc.Predictions)
	}
}

func TestAccuracyRates(t *testing.T) {
	a := Accuracy{Predictions: 200, Positives: 50, FalsePositives: 10}
	if a.Coverage() != 0.25 {
		t.Errorf("coverage = %v", a.Coverage())
	}
	if a.FalsePositiveRate() != 0.05 {
		t.Errorf("fp rate = %v", a.FalsePositiveRate())
	}
	var zero Accuracy
	if zero.Coverage() != 0 || zero.FalsePositiveRate() != 0 {
		t.Error("zero accuracy should have zero rates")
	}
}

func TestDeadBitsClearOnEviction(t *testing.T) {
	c, pol := newTestCache()
	for i := 0; i < 4; i++ {
		c.Access(mem.Access{PC: 0x1, Addr: addr(i)})
	}
	c.Access(mem.Access{PC: deadPC, Addr: addr(2)})
	c.Access(mem.Access{PC: 0x1, Addr: addr(9)}) // evicts dead block 2
	if n := pol.DeadCount(); n != 0 {
		t.Errorf("dead bits after eviction = %d, want 0", n)
	}
}

func TestPolicyName(t *testing.T) {
	pol := New(policy.NewLRU(), &scriptedPredictor{})
	if pol.Name() != "scripted DBRB/LRU" {
		t.Errorf("name = %q", pol.Name())
	}
}

func TestRandomBaseHasNoRankPreference(t *testing.T) {
	// Over a random base, any dead block may be chosen; the policy must
	// still pick a dead one.
	pol := New(policy.NewRandom(1), &scriptedPredictor{deadPC: deadPC})
	c := cache.New(cache.Config{Name: "t", SizeBytes: 4 * mem.BlockSize, Ways: 4}, pol)
	for i := 0; i < 4; i++ {
		c.Access(mem.Access{PC: 0x1, Addr: addr(i)})
	}
	c.Access(mem.Access{PC: deadPC, Addr: addr(2)})
	c.Access(mem.Access{PC: 0x1, Addr: addr(9)})
	if c.Contains(addr(2)) {
		t.Error("dead block not victimized over random base")
	}
}
