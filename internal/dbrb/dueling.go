package dbrb

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
)

// Dueling wraps the dead-block replacement and bypass policy in a
// DIP-style set duel against its own base policy: a few leader sets run
// plain base replacement (no dead-block interventions), a few run full
// DBRB, and the PSEL counter steers the rest. On workloads where dead
// block prediction misfires — the paper's astar is the canonical case —
// the duel converges to the base policy and caps the damage, at the
// cost of a little of the upside elsewhere.
//
// This is an extension beyond the paper (which relies on the sampler's
// high threshold alone to limit damage); it composes the paper's
// technique with the set-dueling safety net of Qureshi et al.
type Dueling struct {
	*Policy
	duel *policy.Duel
}

// NewDueling wraps base + pred in a dueling dead-block policy.
func NewDueling(base cache.Policy, pred predictor.Predictor) *Dueling {
	return &Dueling{Policy: New(base, pred)}
}

// Name implements cache.Policy.
func (p *Dueling) Name() string { return "Dueling " + p.Policy.Name() }

// Reset implements cache.Policy.
func (p *Dueling) Reset(sets, ways int) {
	p.Policy.Reset(sets, ways)
	p.duel = policy.NewDuel(sets, 32, 0xDBDB)
}

// useDBRB reports whether a set currently plays the dead-block side.
// Side A is plain base replacement; side B is DBRB.
func (p *Dueling) useDBRB(set uint32) bool { return p.duel.ChooseB(set) }

// Bypass implements cache.Policy: the duel's PSEL updates here (bypass
// runs exactly once per miss), and only DBRB sets may bypass. The
// predictor still observes and trains on every access either way —
// training is sampled and cheap; only the *interventions* are dueled.
func (p *Dueling) Bypass(set uint32, a mem.Access) bool {
	if !a.Writeback {
		p.duel.OnMiss(set)
	}
	if !p.useDBRB(set) {
		// Keep predictor accounting consistent: record the prediction
		// without acting on it.
		p.Policy.Bypass(set, a)
		return false
	}
	return p.Policy.Bypass(set, a)
}

// Victim implements cache.Policy: base-side sets use the base victim.
func (p *Dueling) Victim(set uint32, a mem.Access) int {
	if !p.useDBRB(set) {
		return p.Base().Victim(set, a)
	}
	return p.Policy.Victim(set, a)
}

// PrefetchVictim implements cache.PrefetchPlacer: base-side sets admit
// no prefetches (they have no dead-block information in force).
func (p *Dueling) PrefetchVictim(set uint32) (int, bool) {
	if !p.useDBRB(set) {
		return 0, false
	}
	return p.Policy.PrefetchVictim(set)
}
