package sampling

import (
	"fmt"
	"math"

	"sdbp/internal/probe"
	"sdbp/internal/stats"
)

// Estimate is the result of combining a plan's measured intervals into
// full-run statistics. Each estimated metric carries the half-width of
// its error bound: the 95% stratified confidence interval from the
// pilot's within-cluster spreads, widened by the plan's relative bias
// allowance. The validation suite checks that the true full-run value
// lands inside [value-half, value+half].
type Estimate struct {
	// Instructions is the full run's instruction count the estimate
	// extrapolates to; SimInstructions is what the sampled run actually
	// simulated (warm-up plus measured intervals).
	Instructions    uint64 `json:"instructions"`
	SimInstructions uint64 `json:"sim_instructions"`
	// Picks is the number of measured intervals contributing; Dropped
	// counts picks that fell outside the stream or measured zero
	// instructions (their weight is renormalized over the rest).
	Picks   int `json:"picks"`
	Dropped int `json:"dropped,omitempty"`

	CPI          float64 `json:"cpi"`
	CPIHalf      float64 `json:"cpi_half"`
	IPC          float64 `json:"ipc"`
	IPCHalf      float64 `json:"ipc_half"`
	MPKI         float64 `json:"mpki"`
	MPKIHalf     float64 `json:"mpki_half"`
	APKI         float64 `json:"apki"`
	MissRate     float64 `json:"miss_rate"`
	MissRateHalf float64 `json:"miss_rate_half"`

	// SimFraction is SimInstructions/Instructions — the work the
	// sampled run did relative to a full one.
	SimFraction float64 `json:"sim_fraction"`
}

// Estimate combines measured interval telemetry into full-run
// estimates. measured must align 1:1 with p.Picks (measured[i] is the
// telemetry of the interval Picks[i] selected); a pick whose
// measurement covers zero instructions (its range fell beyond the
// stream) is dropped and the remaining weights renormalized.
// totalInstr is the full run's instruction count, simInstr the
// instructions the sampled run actually simulated.
func (p *Plan) Estimate(measured []probe.Interval, totalInstr, simInstr uint64) (Estimate, error) {
	if len(measured) != len(p.Picks) {
		return Estimate{}, fmt.Errorf("sampling: %d measurements for %d picks", len(measured), len(p.Picks))
	}
	ws := make([]float64, 0, len(p.Picks))
	cpis := make([]float64, 0, len(p.Picks))
	mpkis := make([]float64, 0, len(p.Picks))
	apkis := make([]float64, 0, len(p.Picks))
	sdCPI := make([]float64, 0, len(p.Picks))
	sdMPKI := make([]float64, 0, len(p.Picks))
	sdAPKI := make([]float64, 0, len(p.Picks))
	dropped := 0
	for i := range p.Picks {
		iv := &measured[i]
		if iv.DInstructions == 0 {
			dropped++
			continue
		}
		ws = append(ws, p.Picks[i].Weight)
		cpis = append(cpis, metricOf(iv, metricCPI))
		mpkis = append(mpkis, metricOf(iv, metricMPKI))
		apkis = append(apkis, metricOf(iv, metricAPKI))
		sdCPI = append(sdCPI, p.Picks[i].SDCPI)
		sdMPKI = append(sdMPKI, p.Picks[i].SDMPKI)
		sdAPKI = append(sdAPKI, p.Picks[i].SDAPKI)
	}
	if len(ws) == 0 {
		return Estimate{}, fmt.Errorf("sampling: every pick measured zero instructions")
	}

	est := Estimate{
		Instructions:    totalInstr,
		SimInstructions: simInstr,
		Picks:           len(ws),
		Dropped:         dropped,
		CPI:             stats.WeightedMean(cpis, ws),
		MPKI:            stats.WeightedMean(mpkis, ws),
		APKI:            stats.WeightedMean(apkis, ws),
		CPIHalf:         stats.StratifiedCI95(ws, sdCPI),
		MPKIHalf:        stats.StratifiedCI95(ws, sdMPKI),
	}
	apkiHalf := stats.StratifiedCI95(ws, sdAPKI)

	// Bias allowance: the stratified CI only captures sampling
	// variance; residual warm-up bias (measured intervals resume from
	// approximately- rather than exactly-warmed cache state) is bounded
	// by BiasRel of the estimate's magnitude.
	est.CPIHalf += p.BiasRel * math.Abs(est.CPI)
	est.MPKIHalf += p.BiasRel * math.Abs(est.MPKI)
	apkiHalf += p.BiasRel * math.Abs(est.APKI)

	if est.CPI > 0 {
		est.IPC = 1 / est.CPI
		// First-order error propagation: |d(1/x)| = dx/x^2.
		est.IPCHalf = est.CPIHalf / (est.CPI * est.CPI)
	}
	if est.APKI > 0 {
		est.MissRate = est.MPKI / est.APKI
		// First-order error propagation for a quotient M/A:
		// |d(M/A)| <= dM/A + (M/A)*dA/A.
		est.MissRateHalf = (est.MPKIHalf + est.MissRate*apkiHalf) / est.APKI
	}
	if totalInstr > 0 {
		est.SimFraction = float64(simInstr) / float64(totalInstr)
	}
	return est, nil
}
