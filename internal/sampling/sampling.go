// Package sampling implements representative-interval selection for
// sampled simulation, after the interval-representativeness literature
// (SimPoint-style clustering; Bueno et al., "Improving the
// Representativeness of Simulation Intervals for the Cache Memory
// System"; Caculo et al., "Memory Access Vectors"): a pilot run's
// interval telemetry (package probe, PR 4) is clustered in a
// per-interval feature space — IPC, miss rate, dead-prediction rates,
// access density — and one representative interval per cluster is
// selected, weighted by the instructions its cluster covers. A sampled
// run then simulates only a warm-up window plus each selected interval
// (see internal/sim), and the estimator combines the measured interval
// metrics into full-run estimates with confidence intervals derived
// from the pilot's within-cluster spreads (internal/stats).
//
// Everything here is deterministic: selection is a pure
// single-threaded function of its input, so the same telemetry always
// yields the same plan, byte for byte, at any GOMAXPROCS — the same
// guarantee the rest of the evaluation pipeline pins.
package sampling

import (
	"fmt"
	"math"

	"sdbp/internal/probe"
)

// Defaults for Config's zero values.
const (
	// DefaultClusters is the cluster count cap: the number of
	// representative intervals a plan selects from a long pilot.
	DefaultClusters = 8
	// DefaultIterations bounds the Lloyd refinement loop.
	DefaultIterations = 32
	// DefaultWarmupFrac is the warm-up window length as a fraction of
	// the interval length. Four intervals is what it empirically takes
	// to wash cold-start bias out of a 2MB LLC at the validated
	// interval length; one interval leaves double-digit miss-rate bias
	// on warm-up-sensitive workloads.
	DefaultWarmupFrac = 4.0
	// DefaultBiasRel is the relative bias allowance folded into every
	// reported error bound (see Plan.BiasRel).
	DefaultBiasRel = 0.03
)

// Config tunes the interval selector. The zero value selects with the
// package defaults.
type Config struct {
	// Clusters caps the number of representative intervals (k); 0 means
	// DefaultClusters. A pilot with fewer intervals than k yields one
	// pick per interval.
	Clusters int
	// Iterations bounds the k-means refinement loop; 0 means
	// DefaultIterations.
	Iterations int
	// WarmupFrac is the functional-warming window before each measured
	// interval, as a fraction of the interval length; 0 means
	// DefaultWarmupFrac. Negative means no warm-up.
	WarmupFrac float64
	// BiasRel overrides the plan's relative bias allowance; 0 means
	// DefaultBiasRel. Negative means none.
	BiasRel float64
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = DefaultClusters
	}
	if c.Iterations == 0 {
		c.Iterations = DefaultIterations
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = DefaultWarmupFrac
	}
	if c.WarmupFrac < 0 {
		c.WarmupFrac = 0
	}
	if c.BiasRel == 0 {
		c.BiasRel = DefaultBiasRel
	}
	if c.BiasRel < 0 {
		c.BiasRel = 0
	}
	return c
}

// Pick is one selected representative interval.
type Pick struct {
	// Index is the pilot interval's index (probe.Interval.Index).
	Index int `json:"index"`
	// Start and End are the interval's exact instruction boundaries in
	// the pilot run: the cumulative retired-instruction counts at which
	// the previous interval ended and this one ended. Because the
	// reference stream is deterministic, the same boundaries identify
	// the same accesses in any run of the same workload and scale.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Weight is the fraction of the pilot run's instructions this
	// pick's cluster covers. A plan's weights sum to 1.
	Weight float64 `json:"weight"`
	// ClusterSize is the number of pilot intervals in the cluster.
	ClusterSize int `json:"cluster_size"`
	// SDCPI, SDMPKI and SDAPKI are the pilot's within-cluster sample
	// standard deviations of cycles, LLC misses and LLC accesses per
	// (kilo-)instruction — the spreads the estimator's confidence
	// intervals are built from.
	SDCPI  float64 `json:"sd_cpi"`
	SDMPKI float64 `json:"sd_mpki"`
	SDAPKI float64 `json:"sd_apki"`
}

// Plan is a complete sampled-simulation recipe for one workload: which
// instruction ranges to measure, how to warm up before each, and how
// to weight the measurements into full-run estimates. Plans serialize
// to JSON for committing next to the goldens they validate against.
type Plan struct {
	// Interval is the telemetry granularity (retired instructions) the
	// pilot was probed at.
	Interval uint64 `json:"interval"`
	// Warmup is the functional-warming window, in instructions,
	// simulated (but not measured) before each selected interval.
	Warmup uint64 `json:"warmup"`
	// Clusters is the configured cluster cap the selector ran with.
	Clusters int `json:"clusters"`
	// BiasRel is the relative bias allowance added to every reported
	// error bound: the confidence interval from the pilot spreads only
	// captures sampling variance, not the residual warm-up bias of
	// resuming from stale cache state, so bounds are widened by
	// BiasRel times the estimate's magnitude.
	BiasRel float64 `json:"bias_rel"`
	// PilotIntervals is the pilot run's interval count.
	PilotIntervals int `json:"pilot_intervals"`
	// PilotInstructions is the pilot run's total instruction count.
	PilotInstructions uint64 `json:"pilot_instructions"`
	// PilotIPC and PilotMissRate are the pilot run's full-run IPC and
	// LLC miss rate. The pilot is a complete simulation, so these come
	// free, and they let a validation pass calibrate its bounds: replay
	// the pilot policy through this plan, and the difference between
	// that estimate and these values is the plan's achieved sampling
	// error on the most state-sensitive policy in the set — a measured,
	// per-workload bias allowance rather than a guessed one. Zero when
	// the plan was built without a pilot run (AllIntervals, hand-built
	// plans); calibration then adds nothing.
	PilotIPC      float64 `json:"pilot_ipc,omitempty"`
	PilotMissRate float64 `json:"pilot_miss_rate,omitempty"`
	// Picks are the selected intervals, sorted by Start.
	Picks []Pick `json:"picks"`
}

// WeightSum returns the sum of the plan's pick weights (1 up to float
// rounding for a well-formed plan).
func (p *Plan) WeightSum() float64 {
	var s float64
	for _, pk := range p.Picks {
		s += pk.Weight
	}
	return s
}

// Validate checks the structural invariants a sampled run depends on:
// at least one pick, positive interval, strictly increasing
// non-overlapping instruction ranges, finite non-negative weights
// summing to 1 (within float tolerance), and finite spreads.
func (p *Plan) Validate() error {
	if p.Interval == 0 {
		return fmt.Errorf("sampling: plan has zero interval granularity")
	}
	if len(p.Picks) == 0 {
		return fmt.Errorf("sampling: plan selects no intervals")
	}
	prevEnd := uint64(0)
	for i, pk := range p.Picks {
		if pk.End <= pk.Start {
			return fmt.Errorf("sampling: pick %d has empty range [%d,%d)", i, pk.Start, pk.End)
		}
		if i > 0 && pk.Start < prevEnd {
			return fmt.Errorf("sampling: pick %d overlaps its predecessor", i)
		}
		if !(pk.Weight >= 0) || math.IsInf(pk.Weight, 0) {
			return fmt.Errorf("sampling: pick %d has invalid weight %v", i, pk.Weight)
		}
		for _, sd := range []float64{pk.SDCPI, pk.SDMPKI, pk.SDAPKI} {
			if math.IsNaN(sd) || math.IsInf(sd, 0) || sd < 0 {
				return fmt.Errorf("sampling: pick %d has invalid spread", i)
			}
		}
		prevEnd = pk.End
	}
	if s := p.WeightSum(); math.Abs(s-1) > 1e-6 {
		return fmt.Errorf("sampling: pick weights sum to %v, want 1", s)
	}
	return nil
}

// featureDim is the per-interval clustering feature count: IPC, miss
// rate, dead rate, false-positive rate, and LLC accesses per kilo
// instruction (memory intensity).
const featureDim = 5

// features derives one interval's clustering vector from its raw delta
// counters. Rates are recomputed from the counters with guarded
// divisions rather than trusted from the (possibly hand-edited or
// fuzzed) serialized floats, so selection can never see NaN or Inf.
func features(iv *probe.Interval) [featureDim]float64 {
	return [featureDim]float64{
		ratio(iv.DInstructions, iv.DCycles),
		ratio(iv.DMisses, iv.DAccesses),
		ratio(iv.DPositives, iv.DPredictions),
		ratio(iv.DFalsePositives, iv.DPredictions),
		ratio(iv.DAccesses, iv.DInstructions) * 1000,
	}
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Select clusters the pilot intervals and returns the sampled-run
// plan. interval is the pilot's telemetry granularity
// (probe.Run.Interval). Selection is deterministic: k-means with
// farthest-first initialization, every tie broken toward the lowest
// interval index.
func Select(ivs []probe.Interval, interval uint64, cfg Config) (Plan, error) {
	cfg = cfg.withDefaults()
	if interval == 0 {
		return Plan{}, fmt.Errorf("sampling: zero interval granularity")
	}
	if len(ivs) == 0 {
		return Plan{}, fmt.Errorf("sampling: no pilot intervals to select from")
	}

	n := len(ivs)
	// Standardized feature matrix and per-interval instruction weights.
	feats := make([][featureDim]float64, n)
	weights := make([]float64, n)
	var total float64
	for i := range ivs {
		feats[i] = features(&ivs[i])
		weights[i] = float64(ivs[i].DInstructions)
		total += weights[i]
	}
	if total <= 0 {
		return Plan{}, fmt.Errorf("sampling: pilot intervals cover no instructions")
	}
	standardize(feats)

	k := cfg.Clusters
	if k > n {
		k = n
	}
	assign := kmeans(feats, weights, k, cfg.Iterations)

	// One pick per non-empty cluster: the member closest to the
	// centroid represents it; the cluster's instruction share is its
	// weight; the within-cluster spreads of the estimation metrics
	// become the confidence-interval inputs.
	plan := Plan{
		Interval:       interval,
		Warmup:         uint64(cfg.WarmupFrac * float64(interval)),
		Clusters:       cfg.Clusters,
		BiasRel:        cfg.BiasRel,
		PilotIntervals: n,
	}
	for c := 0; c < k; c++ {
		var members []int
		var clusterInstr float64
		for i, a := range assign {
			if a == c {
				members = append(members, i)
				clusterInstr += weights[i]
			}
		}
		if len(members) == 0 || clusterInstr == 0 {
			continue
		}
		centroid := centroidOf(feats, weights, members)
		rep := members[0]
		best := math.Inf(1)
		for _, i := range members {
			if d := dist2(feats[i], centroid); d < best {
				best, rep = d, i
			}
		}
		iv := &ivs[rep]
		plan.Picks = append(plan.Picks, Pick{
			Index:       iv.Index,
			Start:       iv.Instructions - iv.DInstructions,
			End:         iv.Instructions,
			Weight:      clusterInstr / total,
			ClusterSize: len(members),
			SDCPI:       spread(ivs, members, metricCPI),
			SDMPKI:      spread(ivs, members, metricMPKI),
			SDAPKI:      spread(ivs, members, metricAPKI),
		})
	}
	sortPicks(plan.Picks)
	for i := range ivs {
		plan.PilotInstructions += ivs[i].DInstructions
	}
	if err := checkPickRanges(plan.Picks); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// AllIntervals returns the degenerate plan that measures every pilot
// interval with its exact instruction weight — the plan under which a
// sampled run simulates the whole stream and the estimator reproduces
// the full run (the metamorphic identity the tests pin). Warm-up is
// zero: every access is already simulated.
func AllIntervals(ivs []probe.Interval, interval uint64) (Plan, error) {
	if interval == 0 {
		return Plan{}, fmt.Errorf("sampling: zero interval granularity")
	}
	if len(ivs) == 0 {
		return Plan{}, fmt.Errorf("sampling: no pilot intervals")
	}
	var total float64
	for i := range ivs {
		total += float64(ivs[i].DInstructions)
	}
	if total <= 0 {
		return Plan{}, fmt.Errorf("sampling: pilot intervals cover no instructions")
	}
	plan := Plan{
		Interval:       interval,
		Clusters:       len(ivs),
		BiasRel:        DefaultBiasRel,
		PilotIntervals: len(ivs),
	}
	for i := range ivs {
		iv := &ivs[i]
		if iv.DInstructions == 0 {
			continue
		}
		plan.Picks = append(plan.Picks, Pick{
			Index:       iv.Index,
			Start:       iv.Instructions - iv.DInstructions,
			End:         iv.Instructions,
			Weight:      float64(iv.DInstructions) / total,
			ClusterSize: 1,
		})
		plan.PilotInstructions += iv.DInstructions
	}
	sortPicks(plan.Picks)
	if err := checkPickRanges(plan.Picks); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// checkPickRanges rejects plans whose pilot intervals carry
// inconsistent instruction bookkeeping (possible only for hand-built
// or corrupted telemetry): a sampled run needs strictly increasing,
// non-overlapping ranges.
func checkPickRanges(picks []Pick) error {
	prevEnd := uint64(0)
	for i, pk := range picks {
		if pk.End <= pk.Start {
			return fmt.Errorf("sampling: pilot interval %d has an empty instruction range", pk.Index)
		}
		if i > 0 && pk.Start < prevEnd {
			return fmt.Errorf("sampling: pilot interval %d overlaps its predecessor", pk.Index)
		}
		prevEnd = pk.End
	}
	return nil
}

// sortPicks orders picks by start instruction (insertion sort: k is
// small and the input is nearly sorted already).
func sortPicks(picks []Pick) {
	for i := 1; i < len(picks); i++ {
		for j := i; j > 0 && picks[j].Start < picks[j-1].Start; j-- {
			picks[j], picks[j-1] = picks[j-1], picks[j]
		}
	}
}

// Estimation metrics: per-interval instruction-normalized rates whose
// weighted combination is exact when every interval is measured.
type metric int

const (
	metricCPI metric = iota
	metricMPKI
	metricAPKI
)

func metricOf(iv *probe.Interval, m metric) float64 {
	switch m {
	case metricCPI:
		return ratio(iv.DCycles, iv.DInstructions)
	case metricMPKI:
		return ratio(iv.DMisses, iv.DInstructions) * 1000
	default:
		return ratio(iv.DAccesses, iv.DInstructions) * 1000
	}
}

// spread is the sample standard deviation of a metric over a cluster's
// members.
func spread(ivs []probe.Interval, members []int, m metric) float64 {
	if len(members) < 2 {
		return 0
	}
	var mean float64
	for _, i := range members {
		mean += metricOf(&ivs[i], m)
	}
	mean /= float64(len(members))
	var ss float64
	for _, i := range members {
		d := metricOf(&ivs[i], m) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(members)-1))
}

// standardize z-scores each feature dimension in place; a
// zero-variance dimension becomes all zeros so it cannot dominate the
// distance metric.
func standardize(feats [][featureDim]float64) {
	n := float64(len(feats))
	for d := 0; d < featureDim; d++ {
		var mean float64
		for i := range feats {
			mean += feats[i][d]
		}
		mean /= n
		var ss float64
		for i := range feats {
			diff := feats[i][d] - mean
			ss += diff * diff
		}
		sd := math.Sqrt(ss / n)
		if sd == 0 || math.IsNaN(sd) || math.IsInf(sd, 0) {
			for i := range feats {
				feats[i][d] = 0
			}
			continue
		}
		for i := range feats {
			feats[i][d] = (feats[i][d] - mean) / sd
		}
	}
}

func dist2(a, b [featureDim]float64) float64 {
	var s float64
	for d := 0; d < featureDim; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// centroidOf returns the instruction-weighted centroid of the given
// members (unweighted mean when their instructions sum to 0).
func centroidOf(feats [][featureDim]float64, weights []float64, members []int) [featureDim]float64 {
	var c [featureDim]float64
	var tw float64
	for _, i := range members {
		tw += weights[i]
	}
	if tw == 0 {
		for _, i := range members {
			for d := 0; d < featureDim; d++ {
				c[d] += feats[i][d]
			}
		}
		for d := 0; d < featureDim; d++ {
			c[d] /= float64(len(members))
		}
		return c
	}
	for _, i := range members {
		w := weights[i] / tw
		for d := 0; d < featureDim; d++ {
			c[d] += w * feats[i][d]
		}
	}
	return c
}

// kmeans clusters the standardized features into k clusters and
// returns each interval's cluster assignment. Deterministic:
// farthest-first initialization seeded at the heaviest interval, Lloyd
// iterations with ties broken toward the lowest center index, a fixed
// iteration cap, and no randomness anywhere.
func kmeans(feats [][featureDim]float64, weights []float64, k, iterations int) []int {
	n := len(feats)
	centers := make([][featureDim]float64, 0, k)

	// Seed: the interval covering the most instructions (lowest index
	// on ties) — the behavior the run spends the most time in.
	seed := 0
	for i := 1; i < n; i++ {
		if weights[i] > weights[seed] {
			seed = i
		}
	}
	centers = append(centers, feats[seed])

	// Farthest-first: each further center is the interval farthest
	// from every existing center (lowest index on ties).
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist2(feats[i], centers[0])
	}
	for len(centers) < k {
		far, farD := 0, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		centers = append(centers, feats[far])
		for i := 0; i < n; i++ {
			if d := dist2(feats[i], centers[len(centers)-1]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	for it := 0; it < iterations; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, dist2(feats[i], centers[0])
			for c := 1; c < len(centers); c++ {
				if d := dist2(feats[i], centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute instruction-weighted centroids; an emptied center
		// keeps its position (it can re-acquire members later or end
		// up unused).
		for c := range centers {
			var members []int
			for i, a := range assign {
				if a == c {
					members = append(members, i)
				}
			}
			if len(members) > 0 {
				centers[c] = centroidOf(feats, weights, members)
			}
		}
	}
	return assign
}
