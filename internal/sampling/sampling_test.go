package sampling

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"sdbp/internal/probe"
)

// synthIntervals builds a deterministic pilot telemetry series with n
// intervals of the given granularity, alternating between a handful of
// behavioral phases so clustering has real structure to find.
func synthIntervals(n int, interval uint64) []probe.Interval {
	ivs := make([]probe.Interval, n)
	var cum uint64
	for i := range ivs {
		phase := (i / 8) % 3
		di := interval
		if i == n-1 {
			di = interval / 2 // short tail interval, like real runs
		}
		cum += di
		iv := probe.Interval{
			Index:         i,
			Instructions:  cum,
			DInstructions: di,
			DCycles:       di * uint64(2+phase),
			DAccesses:     di / 10,
			DMisses:       di / uint64(20+10*phase),
			DPredictions:  di / 15,
			DPositives:    di / uint64(30+5*phase),
		}
		iv.DHits = iv.DAccesses - iv.DMisses
		iv.ComputeRates()
		ivs[i] = iv
	}
	return ivs
}

func TestSelectWeightsSumToOne(t *testing.T) {
	ivs := synthIntervals(100, 50_000)
	plan, err := Select(ivs, 50_000, Config{Clusters: 6})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := plan.WeightSum(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", got)
	}
	if len(plan.Picks) == 0 || len(plan.Picks) > 6 {
		t.Fatalf("got %d picks, want 1..6", len(plan.Picks))
	}
	if want := uint64(DefaultWarmupFrac * 50_000); plan.Warmup != want {
		t.Fatalf("warmup = %d, want the default warm-up of %d", plan.Warmup, want)
	}
}

func TestSelectPickBoundariesMatchPilot(t *testing.T) {
	ivs := synthIntervals(50, 10_000)
	plan, err := Select(ivs, 10_000, Config{Clusters: 4})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	for _, pk := range plan.Picks {
		iv := ivs[pk.Index]
		if pk.Start != iv.Instructions-iv.DInstructions || pk.End != iv.Instructions {
			t.Errorf("pick %d boundaries [%d,%d), pilot interval covers [%d,%d)",
				pk.Index, pk.Start, pk.End, iv.Instructions-iv.DInstructions, iv.Instructions)
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	ivs := synthIntervals(120, 25_000)
	prev := runtime.GOMAXPROCS(1)
	a, errA := Select(ivs, 25_000, Config{})
	runtime.GOMAXPROCS(prev)
	b, errB := Select(ivs, 25_000, Config{})
	if errA != nil || errB != nil {
		t.Fatalf("Select: %v / %v", errA, errB)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("selection not deterministic:\n%s\n%s", ja, jb)
	}
}

func TestSelectFewerIntervalsThanClusters(t *testing.T) {
	ivs := synthIntervals(3, 10_000)
	plan, err := Select(ivs, 10_000, Config{Clusters: 8})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	// Intervals 0 and 1 are behaviorally identical (same phase, same
	// length) and may legitimately collapse into one cluster.
	if len(plan.Picks) < 2 || len(plan.Picks) > 3 {
		t.Fatalf("got %d picks for 3 intervals, want 2..3", len(plan.Picks))
	}
	if got := plan.WeightSum(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", got)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(nil, 10_000, Config{}); err == nil {
		t.Error("Select(no intervals) succeeded, want error")
	}
	if _, err := Select(synthIntervals(5, 100), 0, Config{}); err == nil {
		t.Error("Select(interval=0) succeeded, want error")
	}
	zero := []probe.Interval{{Index: 0, Instructions: 0, DInstructions: 0}}
	if _, err := Select(zero, 100, Config{}); err == nil {
		t.Error("Select(zero-instruction pilot) succeeded, want error")
	}
}

func TestAllIntervalsWeights(t *testing.T) {
	ivs := synthIntervals(20, 10_000)
	plan, err := AllIntervals(ivs, 10_000)
	if err != nil {
		t.Fatalf("AllIntervals: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(plan.Picks) != 20 {
		t.Fatalf("got %d picks, want 20", len(plan.Picks))
	}
	var total uint64
	for i := range ivs {
		total += ivs[i].DInstructions
	}
	for i, pk := range plan.Picks {
		want := float64(ivs[i].DInstructions) / float64(total)
		if math.Abs(pk.Weight-want) > 1e-12 {
			t.Errorf("pick %d weight %v, want %v", i, pk.Weight, want)
		}
	}
	if plan.Warmup != 0 {
		t.Fatalf("all-intervals plan has warmup %d, want 0", plan.Warmup)
	}
}

// TestEstimateAllIntervalsExact is the metamorphic identity: measuring
// every interval with its instruction weight reproduces the full run's
// aggregate metrics exactly (up to float summation order).
func TestEstimateAllIntervalsExact(t *testing.T) {
	ivs := synthIntervals(40, 10_000)
	plan, err := AllIntervals(ivs, 10_000)
	if err != nil {
		t.Fatalf("AllIntervals: %v", err)
	}
	var instr, cycles, accesses, misses uint64
	for i := range ivs {
		instr += ivs[i].DInstructions
		cycles += ivs[i].DCycles
		accesses += ivs[i].DAccesses
		misses += ivs[i].DMisses
	}
	est, err := plan.Estimate(ivs, instr, instr)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	wantCPI := float64(cycles) / float64(instr)
	wantMPKI := float64(misses) / float64(instr) * 1000
	wantMiss := float64(misses) / float64(accesses)
	if rel := math.Abs(est.CPI-wantCPI) / wantCPI; rel > 1e-12 {
		t.Errorf("CPI %v, want %v (rel %v)", est.CPI, wantCPI, rel)
	}
	if rel := math.Abs(est.MPKI-wantMPKI) / wantMPKI; rel > 1e-12 {
		t.Errorf("MPKI %v, want %v (rel %v)", est.MPKI, wantMPKI, rel)
	}
	if rel := math.Abs(est.MissRate-wantMiss) / wantMiss; rel > 1e-12 {
		t.Errorf("MissRate %v, want %v (rel %v)", est.MissRate, wantMiss, rel)
	}
	if est.SimFraction != 1 {
		t.Errorf("SimFraction %v, want 1", est.SimFraction)
	}
	if est.Dropped != 0 {
		t.Errorf("Dropped %d, want 0", est.Dropped)
	}
}

func TestEstimateDropsEmptyMeasurements(t *testing.T) {
	ivs := synthIntervals(30, 10_000)
	plan, err := Select(ivs, 10_000, Config{Clusters: 5})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	measured := make([]probe.Interval, len(plan.Picks))
	for i, pk := range plan.Picks {
		measured[i] = ivs[pk.Index]
	}
	// Blank out the last pick, as if its range fell beyond the stream.
	measured[len(measured)-1] = probe.Interval{}
	est, err := plan.Estimate(measured, 300_000, 60_000)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", est.Dropped)
	}
	if est.Picks != len(plan.Picks)-1 {
		t.Fatalf("Picks = %d, want %d", est.Picks, len(plan.Picks)-1)
	}
	if est.CPI <= 0 || math.IsNaN(est.CPI) {
		t.Fatalf("CPI = %v after drop", est.CPI)
	}
}

func TestEstimateAllDroppedErrors(t *testing.T) {
	ivs := synthIntervals(10, 10_000)
	plan, err := Select(ivs, 10_000, Config{Clusters: 3})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	measured := make([]probe.Interval, len(plan.Picks))
	if _, err := plan.Estimate(measured, 100_000, 0); err == nil {
		t.Fatal("Estimate with all-empty measurements succeeded, want error")
	}
	if _, err := plan.Estimate(measured[:len(measured)-1], 100_000, 0); len(plan.Picks) > 1 && err == nil {
		t.Fatal("Estimate with mismatched measurement count succeeded, want error")
	}
}

// TestEstimateBoundsCoverStationaryStream: on a near-stationary stream
// the representative intervals' metrics sit close to the full-run
// values, so estimates must land within their own reported bounds of
// the truth.
func TestEstimateBoundsCoverStationaryStream(t *testing.T) {
	ivs := synthIntervals(90, 20_000)
	plan, err := Select(ivs, 20_000, Config{Clusters: 6})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	var instr, cycles, accesses, misses uint64
	for i := range ivs {
		instr += ivs[i].DInstructions
		cycles += ivs[i].DCycles
		accesses += ivs[i].DAccesses
		misses += ivs[i].DMisses
	}
	measured := make([]probe.Interval, len(plan.Picks))
	var sim uint64
	for i, pk := range plan.Picks {
		measured[i] = ivs[pk.Index]
		sim += plan.Warmup + (pk.End - pk.Start)
	}
	est, err := plan.Estimate(measured, instr, sim)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	trueCPI := float64(cycles) / float64(instr)
	trueMiss := float64(misses) / float64(accesses)
	if math.Abs(est.CPI-trueCPI) > est.CPIHalf {
		t.Errorf("CPI %v ± %v does not cover true %v", est.CPI, est.CPIHalf, trueCPI)
	}
	if math.Abs(est.MissRate-trueMiss) > est.MissRateHalf {
		t.Errorf("MissRate %v ± %v does not cover true %v", est.MissRate, est.MissRateHalf, trueMiss)
	}
	if est.SimFraction >= 1 {
		t.Errorf("SimFraction %v, want < 1 for a sampled plan", est.SimFraction)
	}
}

func TestValidateRejectsMalformedPlans(t *testing.T) {
	good := Plan{
		Interval: 100,
		Picks: []Pick{
			{Index: 0, Start: 0, End: 100, Weight: 0.5},
			{Index: 1, Start: 100, End: 200, Weight: 0.5},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	cases := map[string]Plan{
		"no picks":      {Interval: 100},
		"zero interval": {Picks: good.Picks},
		"empty range": {Interval: 100, Picks: []Pick{
			{Index: 0, Start: 100, End: 100, Weight: 1},
		}},
		"overlap": {Interval: 100, Picks: []Pick{
			{Index: 0, Start: 0, End: 150, Weight: 0.5},
			{Index: 1, Start: 100, End: 200, Weight: 0.5},
		}},
		"bad weight sum": {Interval: 100, Picks: []Pick{
			{Index: 0, Start: 0, End: 100, Weight: 0.25},
		}},
		"nan spread": {Interval: 100, Picks: []Pick{
			{Index: 0, Start: 0, End: 100, Weight: 1, SDCPI: math.NaN()},
		}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestSelectIgnoresSerializedRates(t *testing.T) {
	// Selection must recompute rates from counters: poisoned float
	// fields (as a fuzzer or hand-edited JSONL could carry) must not
	// change the outcome or introduce NaN.
	ivs := synthIntervals(40, 10_000)
	clean, err := Select(ivs, 10_000, Config{Clusters: 4})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	for i := range ivs {
		ivs[i].IPC = math.NaN()
		ivs[i].MissRate = math.Inf(1)
		ivs[i].DeadRate = -1e308
		ivs[i].FPRate = math.NaN()
	}
	poisoned, err := Select(ivs, 10_000, Config{Clusters: 4})
	if err != nil {
		t.Fatalf("Select(poisoned): %v", err)
	}
	ja, _ := json.Marshal(clean)
	jb, _ := json.Marshal(poisoned)
	if string(ja) != string(jb) {
		t.Fatal("poisoned serialized rates changed the selection")
	}
}
