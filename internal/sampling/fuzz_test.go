package sampling

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"sdbp/internal/probe"
)

// fuzzSeed renders a small well-formed telemetry stream as JSONL bytes
// for the seed corpus, mirroring the interval JSONL the selector
// consumes in production (and the corpus shape of internal/probe's
// FuzzReadJSONL).
func fuzzSeed(t *testing.F, ivs []probe.Interval, interval uint64) []byte {
	t.Helper()
	var instr, cycles uint64
	for i := range ivs {
		instr += ivs[i].DInstructions
		cycles += ivs[i].DCycles
	}
	b, err := probe.MarshalJSONL([]probe.Series{{
		Run: probe.Run{
			Benchmark: "fuzz", Policy: "fuzz", Interval: interval,
			Instructions: instr, Cycles: cycles,
		},
		Intervals: ivs,
	}})
	if err != nil {
		t.Fatalf("seed encode: %v", err)
	}
	return b
}

// FuzzIntervalSelect throws arbitrary interval-telemetry JSONL at the
// selector. For any input the decoder accepts, Select must not panic;
// when it succeeds, the plan must validate (weights sum to 1, picks
// sorted and non-overlapping, spreads finite) and a second Select on
// the same input must be byte-identical.
func FuzzIntervalSelect(f *testing.F) {
	f.Add(fuzzSeed(f, synthIntervals(24, 10_000), 10_000))
	f.Add(fuzzSeed(f, synthIntervals(3, 1_000), 1_000))
	f.Add(fuzzSeed(f, []probe.Interval{{Index: 0, Instructions: 5, DInstructions: 5}}, 10))
	f.Add([]byte(`{"type":"run","benchmark":"x","interval":100}` + "\n" +
		`{"type":"interval","index":0,"instructions":100,"d_instructions":100,"d_cycles":250}` + "\n"))
	f.Add([]byte(`{"type":"run","interval":7}` + "\n" +
		`{"type":"interval","instructions":3,"d_instructions":9}` + "\n"))
	f.Add([]byte(`{"type":"run","interval":1}` + "\n" +
		`{"type":"interval","instructions":18446744073709551615,"d_instructions":18446744073709551615,"d_cycles":1,"ipc":1e308}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound the work per exec: real pilots have hundreds of
		// intervals; a mutator-grown multi-megabyte stream only slows
		// the k-means loop down without exercising new behavior.
		if len(data) > 64<<10 {
			return
		}
		series, err := probe.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, s := range series {
			for _, cfg := range []Config{{}, {Clusters: 2, WarmupFrac: -1}, {Clusters: 16, Iterations: 3, BiasRel: 0.1}} {
				plan, err := Select(s.Intervals, s.Run.Interval, cfg)
				if err != nil {
					continue // rejected input is fine; panicking is not
				}
				if err := plan.Validate(); err != nil {
					t.Fatalf("accepted plan fails validation: %v\ninput:\n%s", err, data)
				}
				if sum := plan.WeightSum(); math.Abs(sum-1) > 1e-9 {
					t.Fatalf("weights sum to %v, want 1\ninput:\n%s", sum, data)
				}
				again, err := Select(s.Intervals, s.Run.Interval, cfg)
				if err != nil {
					t.Fatalf("second Select failed where first succeeded: %v", err)
				}
				ja, _ := json.Marshal(plan)
				jb, _ := json.Marshal(again)
				if !bytes.Equal(ja, jb) {
					t.Fatalf("selection not deterministic:\n%s\n%s", ja, jb)
				}
				// The estimator must survive feeding the pilot's own
				// intervals back as measurements (the self-consistency
				// path the validation suite exercises).
				measured := make([]probe.Interval, len(plan.Picks))
				for i, pk := range plan.Picks {
					for j := range s.Intervals {
						if s.Intervals[j].Index == pk.Index {
							measured[i] = s.Intervals[j]
							break
						}
					}
				}
				est, err := plan.Estimate(measured, plan.PilotInstructions, plan.PilotInstructions)
				if err != nil {
					continue
				}
				for name, v := range map[string]float64{
					"cpi": est.CPI, "cpi_half": est.CPIHalf,
					"ipc": est.IPC, "ipc_half": est.IPCHalf,
					"mpki": est.MPKI, "mpki_half": est.MPKIHalf,
					"miss_rate": est.MissRate, "miss_rate_half": est.MissRateHalf,
				} {
					if math.IsNaN(v) {
						t.Fatalf("estimate %s is NaN\ninput:\n%s", name, data)
					}
				}
			}
		}
	})
}
