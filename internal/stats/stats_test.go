package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean failed")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean failed")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero element should be 0")
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality on positive inputs.
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && x < 1e9 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		return GeoMean(pos) <= Mean(pos)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 9}, []float64{4, 3})
	if !almost(got[0], 0.5) || !almost(got[1], 3) {
		t.Errorf("Normalize = %v", got)
	}
	if got := Normalize([]float64{1}, []float64{0}); got[0] != 0 {
		t.Error("division by zero base not guarded")
	}
}

func TestNormalizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Normalize([]float64{1}, []float64{1, 2})
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if !almost(ws, 1.5) {
		t.Errorf("WeightedSpeedup = %v", ws)
	}
	if got := WeightedSpeedup([]float64{1}, []float64{0}); got != 0 {
		t.Error("zero single IPC not guarded")
	}
}

func TestStddevAndMeanCI95(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		sd, half float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 0, 0},
		{"all equal", []float64{4, 4, 4, 4}, 0, 0},
		// sample stddev of {1,2,3,4,5} is sqrt(2.5)
		{"uniform", []float64{1, 2, 3, 4, 5}, 1.5811388300841898, 1.386},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Stddev(tc.xs); math.Abs(got-tc.sd) > 1e-9 {
				t.Errorf("Stddev = %v, want %v", got, tc.sd)
			}
			mean, half := MeanCI95(tc.xs)
			if got := Mean(tc.xs); mean != got {
				t.Errorf("MeanCI95 mean = %v, Mean = %v", mean, got)
			}
			if math.Abs(half-tc.half) > 1e-3 {
				t.Errorf("CI95 half-width = %v, want %v", half, tc.half)
			}
		})
	}
}

// TestNonFiniteInputs pins the documented contract: NaN and Inf
// propagate through the mean-family helpers rather than being silently
// dropped, so callers on the partial-result path must filter first.
func TestNonFiniteInputs(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)

	if got := Mean([]float64{1, nan}); !math.IsNaN(got) {
		t.Errorf("Mean with NaN = %v, want NaN", got)
	}
	if got := Mean([]float64{1, inf}); !math.IsInf(got, 1) {
		t.Errorf("Mean with +Inf = %v, want +Inf", got)
	}
	if got := Stddev([]float64{1, 2, nan}); !math.IsNaN(got) {
		t.Errorf("Stddev with NaN = %v, want NaN", got)
	}
	if _, half := MeanCI95([]float64{1, 2, inf}); !math.IsNaN(half) && !math.IsInf(half, 1) {
		t.Errorf("CI95 half with Inf = %v, want non-finite", half)
	}

	// GeoMean: NaN fails the x <= 0 comparison (comparisons with NaN
	// are false) so it propagates through the log-sum; +Inf yields +Inf.
	if got := GeoMean([]float64{1, nan}); !math.IsNaN(got) {
		t.Errorf("GeoMean with NaN = %v, want NaN", got)
	}
	if got := GeoMean([]float64{1, inf}); !math.IsInf(got, 1) {
		t.Errorf("GeoMean with +Inf = %v, want +Inf", got)
	}
	// -Inf is <= 0 and takes the defined-empty path.
	if got := GeoMean([]float64{1, math.Inf(-1)}); got != 0 {
		t.Errorf("GeoMean with -Inf = %v, want 0", got)
	}

	// Normalize divides elementwise; non-finite cells stay local to
	// their slot.
	got := Normalize([]float64{nan, 4}, []float64{2, 2})
	if !math.IsNaN(got[0]) || got[1] != 2 {
		t.Errorf("Normalize with NaN cell = %v", got)
	}
	// A non-finite base still divides: x/Inf is 0, x/NaN is NaN.
	got = Normalize([]float64{1, 1}, []float64{inf, nan})
	if got[0] != 0 || !math.IsNaN(got[1]) {
		t.Errorf("Normalize with non-finite base = %v", got)
	}
}

func TestWeightedMean(t *testing.T) {
	if !almost(WeightedMean([]float64{1, 3}, []float64{1, 1}), 2) {
		t.Error("equal weights should reduce to Mean")
	}
	if !almost(WeightedMean([]float64{1, 3}, []float64{3, 1}), 1.5) {
		t.Error("weighted mean failed")
	}
	// Unnormalized weights give the same result as normalized ones.
	if !almost(WeightedMean([]float64{2, 4, 8}, []float64{2, 4, 2}),
		WeightedMean([]float64{2, 4, 8}, []float64{0.25, 0.5, 0.25})) {
		t.Error("weighted mean must be invariant under weight scaling")
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("WeightedMean(nil) != 0")
	}
	if WeightedMean([]float64{5}, []float64{0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
}

func TestStratifiedSE(t *testing.T) {
	// One stratum: SE is that stratum's sd.
	if !almost(StratifiedSE([]float64{1}, []float64{0.5}), 0.5) {
		t.Error("single-stratum SE failed")
	}
	// Two equal strata with equal sd s: sqrt(2*(s/2)^2) = s/sqrt(2).
	if !almost(StratifiedSE([]float64{1, 1}, []float64{2, 2}), 2/math.Sqrt2) {
		t.Error("two-strata SE failed")
	}
	// Scaling weights must not change the normalized SE.
	if !almost(StratifiedSE([]float64{2, 6}, []float64{1, 3}),
		StratifiedSE([]float64{0.25, 0.75}, []float64{1, 3})) {
		t.Error("SE must be invariant under weight scaling")
	}
	if StratifiedSE(nil, nil) != 0 {
		t.Error("StratifiedSE(nil) != 0")
	}
	if !almost(StratifiedCI95([]float64{1}, []float64{1}), 1.96) {
		t.Error("StratifiedCI95 failed")
	}
}

func TestStratifiedSEZeroSpread(t *testing.T) {
	// Perfectly homogeneous strata report a zero-width interval.
	if StratifiedSE([]float64{0.3, 0.7}, []float64{0, 0}) != 0 {
		t.Error("zero spreads must give zero SE")
	}
}
