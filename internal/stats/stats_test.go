package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean failed")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean failed")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero element should be 0")
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality on positive inputs.
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && x < 1e9 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		return GeoMean(pos) <= Mean(pos)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 9}, []float64{4, 3})
	if !almost(got[0], 0.5) || !almost(got[1], 3) {
		t.Errorf("Normalize = %v", got)
	}
	if got := Normalize([]float64{1}, []float64{0}); got[0] != 0 {
		t.Error("division by zero base not guarded")
	}
}

func TestNormalizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Normalize([]float64{1}, []float64{1, 2})
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if !almost(ws, 1.5) {
		t.Errorf("WeightedSpeedup = %v", ws)
	}
	if got := WeightedSpeedup([]float64{1}, []float64{0}); got != 0 {
		t.Error("zero single IPC not guarded")
	}
}
