// Package stats provides the small statistical helpers the experiment
// harness reports with: arithmetic and geometric means, normalization,
// and weighted speedup.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for an empty slice; xs
// must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Normalize returns xs[i]/base[i] elementwise. The slices must have
// equal length.
func Normalize(xs, base []float64) []float64 {
	if len(xs) != len(base) {
		panic("stats: length mismatch")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		if base[i] != 0 {
			out[i] = xs[i] / base[i]
		}
	}
	return out
}

// Stddev returns the sample standard deviation of xs (n-1
// denominator); 0 for fewer than two values. NaN or Inf inputs
// propagate, matching Mean: callers on the partial-result path must
// filter non-finite cells first.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanCI95 returns the arithmetic mean of xs and the half-width of its
// 95% confidence interval under a normal approximation (1.96 times the
// standard error); the half-width is 0 for fewer than two values.
func MeanCI95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, 1.96 * Stddev(xs) / math.Sqrt(float64(len(xs)))
}

// WeightedMean returns the weighted arithmetic mean of xs: sum(w*x) /
// sum(w), or 0 when the weights sum to 0 (or the slices are empty).
// The slices must have equal length. NaN or Inf inputs propagate,
// matching Mean.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: length mismatch")
	}
	var sx, sw float64
	for i, x := range xs {
		sx += ws[i] * x
		sw += ws[i]
	}
	if sw == 0 {
		return 0
	}
	return sx / sw
}

// StratifiedSE returns the standard error of a stratified estimator
// that measures one sample per stratum: sqrt(sum((w_i*sd_i)^2)) with
// the weights normalized to sum to 1. sd_i is each stratum's standard
// deviation (here: the pilot run's within-cluster spread), w_i its
// weight. Zero when the weights sum to 0.
func StratifiedSE(ws, sds []float64) float64 {
	if len(ws) != len(sds) {
		panic("stats: length mismatch")
	}
	var sw float64
	for _, w := range ws {
		sw += w
	}
	if sw == 0 {
		return 0
	}
	var ss float64
	for i, w := range ws {
		t := (w / sw) * sds[i]
		ss += t * t
	}
	return math.Sqrt(ss)
}

// StratifiedCI95 returns the half-width of the 95% confidence interval
// of a stratified estimate under a normal approximation: 1.96 times
// StratifiedSE.
func StratifiedCI95(ws, sds []float64) float64 {
	return 1.96 * StratifiedSE(ws, sds)
}

// WeightedSpeedup computes the multiprogrammed weighted speedup: the sum
// over threads of IPC_i / SingleIPC_i.
func WeightedSpeedup(ipcs, singleIPCs []float64) float64 {
	if len(ipcs) != len(singleIPCs) {
		panic("stats: length mismatch")
	}
	var ws float64
	for i := range ipcs {
		if singleIPCs[i] > 0 {
			ws += ipcs[i] / singleIPCs[i]
		}
	}
	return ws
}
