package sdbp

import (
	"math"
	"strings"
	"testing"
)

const testScale = 0.02

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Errorf("benchmarks = %d, want 29", len(Benchmarks()))
	}
	if len(SubsetBenchmarks()) != 19 {
		t.Errorf("subset = %d, want 19", len(SubsetBenchmarks()))
	}
	if len(Mixes()) != 10 {
		t.Errorf("mixes = %d, want 10", len(Mixes()))
	}
}

func TestRunReturnsSaneMetrics(t *testing.T) {
	r := Run("456.hmmer", LRU(), Options{Scale: testScale})
	if r.MPKI <= 0 || r.IPC <= 0 || r.Instructions == 0 {
		t.Errorf("result = %+v", r)
	}
	if !math.IsNaN(r.Coverage) {
		t.Error("plain LRU should have NaN coverage")
	}
}

func TestRunSamplerReportsAccuracy(t *testing.T) {
	r := Run("456.hmmer", SamplerDBRB(), Options{Scale: testScale})
	if math.IsNaN(r.Coverage) || math.IsNaN(r.FalsePositiveRate) {
		t.Error("DBRB policy should report accuracy")
	}
	if r.Coverage < 0 || r.Coverage > 1 {
		t.Errorf("coverage = %v", r.Coverage)
	}
}

func TestRunPanicsOnUnknownBenchmark(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown benchmark")
		}
	}()
	Run("999.nope", LRU(), Options{})
}

func TestRunOptimalNeverWorseThanLRU(t *testing.T) {
	lru := Run("462.libquantum", LRU(), Options{Scale: testScale})
	opt := RunOptimal("462.libquantum", Options{Scale: testScale})
	if opt.MPKI > lru.MPKI*1.001 {
		t.Errorf("optimal MPKI %.2f above LRU %.2f", opt.MPKI, lru.MPKI)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, c := range []struct {
		p    Policy
		want string
	}{
		{LRU(), "LRU"}, {Random(), "Random"}, {DIP(), "DIP"},
		{TADIP(), "TADIP"}, {RRIP(), "RRIP"}, {SamplerDBRB(), "Sampler"},
		{TDBP(), "TDBP"}, {CDBP(), "CDBP"},
		{SamplerDBRBRandom(), "Random Sampler"}, {CDBPRandom(), "Random CDBP"},
	} {
		if c.p.Name() != c.want {
			t.Errorf("name = %q, want %q", c.p.Name(), c.want)
		}
	}
}

func TestSamplerVariants(t *testing.T) {
	for _, name := range SamplerVariantNames() {
		p, err := SamplerVariant(name)
		if err != nil {
			t.Errorf("variant %q: %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("variant name = %q", p.Name())
		}
	}
	if _, err := SamplerVariant("bogus"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestLLCMegabytesOption(t *testing.T) {
	small := Run("429.mcf", LRU(), Options{Scale: testScale, LLCMegabytes: 1})
	big := Run("429.mcf", LRU(), Options{Scale: testScale, LLCMegabytes: 16})
	if big.MPKI >= small.MPKI {
		t.Errorf("16MB MPKI %.2f >= 1MB MPKI %.2f", big.MPKI, small.MPKI)
	}
}

func TestRunMix(t *testing.T) {
	r := RunMix("mix1", TADIP(), Options{Scale: testScale})
	if r.Mix != "mix1" || r.Policy != "TADIP" {
		t.Errorf("labels = %s/%s", r.Mix, r.Policy)
	}
	if r.WeightedSpeedup <= 0 || r.WeightedSpeedup > 4 {
		t.Errorf("weighted speedup = %v", r.WeightedSpeedup)
	}
	for _, b := range r.Benchmarks {
		if !strings.Contains(b, ".") {
			t.Errorf("member %q malformed", b)
		}
	}
}

func TestRunMixPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown mix")
		}
	}()
	RunMix("mix99", LRU(), Options{})
}

func TestLineEfficiencies(t *testing.T) {
	r := Run("456.hmmer", LRU(), Options{Scale: testScale, KeepLineEfficiencies: true})
	if len(r.LineEfficiencies) == 0 {
		t.Fatal("no efficiency map")
	}
	for _, row := range r.LineEfficiencies {
		for _, e := range row {
			if e < 0 || e > 1 {
				t.Fatalf("line efficiency %v out of range", e)
			}
		}
	}
}

// TestHeadlineResult exercises the paper's headline on one benchmark:
// the sampling predictor reduces misses and improves IPC over LRU.
func TestHeadlineResult(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	base := Run("456.hmmer", LRU(), Options{Scale: 0.1})
	samp := Run("456.hmmer", SamplerDBRB(), Options{Scale: 0.1})
	if samp.MPKI >= base.MPKI {
		t.Errorf("sampler MPKI %.2f not below LRU %.2f", samp.MPKI, base.MPKI)
	}
	if samp.IPC <= base.IPC {
		t.Errorf("sampler IPC %.3f not above LRU %.3f", samp.IPC, base.IPC)
	}
	if samp.Efficiency <= base.Efficiency {
		t.Errorf("sampler efficiency %.2f not above LRU %.2f",
			samp.Efficiency, base.Efficiency)
	}
}
