// Benchmarks regenerating every table and figure in the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// harness end to end and reports its headline quantity as a custom
// metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The stream scale defaults to 0.1 of
// the suite's full length to keep a complete -bench=. pass to a few
// minutes; set SDBP_BENCH_SCALE=1.0 for full-length runs (the numbers
// recorded in EXPERIMENTS.md).
package sdbp

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/figures"
	"sdbp/internal/hier"
	"sdbp/internal/policy"
	"sdbp/internal/power"
	"sdbp/internal/predictor"
	"sdbp/internal/sim"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// metricName converts a policy name to a metric-safe token (no
// whitespace, per testing.B.ReportMetric's contract).
func metricName(prefix, pol string) string {
	return prefix + strings.ReplaceAll(pol, " ", "_")
}

func benchScale() float64 {
	if s := os.Getenv("SDBP_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// BenchmarkClaimDeadTime reproduces the Section I claim: blocks in a
// 2MB LRU LLC are dead 86.2% of the time on average.
func BenchmarkClaimDeadTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := figures.RunSingleCore(benchScale())
		b.ReportMetric(sc.DeadTimeClaim()*100, "%dead")
	}
}

// BenchmarkFig1Efficiency reproduces Figure 1: 456.hmmer's cache
// efficiency on a 1MB LLC under LRU (paper: 22%) and under the sampler
// (paper: 87%).
func BenchmarkFig1Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.RunFig1(benchScale())
		b.ReportMetric(f.LRUEfficiency*100, "%eff-lru")
		b.ReportMetric(f.SamplerEfficiency*100, "%eff-sampler")
	}
}

// BenchmarkTable1Storage reproduces Table I: predictor storage
// overheads (reftrace 72KB, counting 108KB; the sampler's stated-field
// arithmetic gives 8.69KB).
func BenchmarkTable1Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = figures.RenderTable1()
		s := predictor.NewSampler(predictor.DefaultSamplerConfig())
		s.Reset(2048, 16)
		b.ReportMetric(power.TotalKB(s.Storage()), "KB-sampler")
	}
}

// BenchmarkTable2Power reproduces Table II via the analytic CACTI
// substitute and reports the sampler's share of the baseline LLC
// leakage (paper: 1.2%).
func BenchmarkTable2Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = figures.RenderTable2()
		m := power.DefaultModel()
		s := predictor.NewSampler(predictor.DefaultSamplerConfig())
		s.Reset(2048, 16)
		rep := m.Evaluate("sampler", s.Storage())
		leak, _ := m.BaselineLLC()
		b.ReportMetric(rep.TotalLeakage()/leak*100, "%LLC-leak")
	}
}

// BenchmarkTable3Characterization reproduces Table III: MPKI under LRU
// and MIN and IPC under LRU for all 29 benchmarks.
func BenchmarkTable3Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3 := figures.RunTable3(benchScale())
		var lru, min float64
		for _, r := range t3.Rows {
			lru += r.MPKILRU
			min += r.MPKIMin
		}
		b.ReportMetric(min/lru, "min/lru-mpki")
	}
}

// BenchmarkTable4Mixes reproduces Table IV: the ten quad-core mixes'
// cache sensitivity curves over LLC sizes 128KB..32MB.
func BenchmarkTable4Mixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t4 := figures.RunTable4(benchScale())
		// Report the average capacity sensitivity: MPKI at 32MB over
		// MPKI at 128KB.
		var ratio float64
		for _, c := range t4.Curves {
			ratio += c[len(c)-1] / c[0]
		}
		b.ReportMetric(ratio/float64(len(t4.Curves)), "mpki-32M/128K")
	}
}

// BenchmarkFig4MissesLRU reproduces Figure 4: LLC misses normalized to
// LRU (paper ameans: TDBP 1.08, CDBP 0.954, DIP 0.939, RRIP 0.919,
// Sampler 0.883, Optimal 0.814).
func BenchmarkFig4MissesLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := figures.RunSingleCore(benchScale())
		lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
		for _, pol := range []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"} {
			norm := stats.Normalize(sc.Matrix.Series(pol, func(r sim.SingleResult) float64 { return r.MPKI }), lru)
			b.ReportMetric(stats.Mean(norm), metricName("amean-", pol))
		}
	}
}

// BenchmarkFig5SpeedupLRU reproduces Figure 5: speedup over LRU (paper
// gmeans: TDBP ~1.00, CDBP 1.023, DIP 1.031, RRIP 1.041, Sampler
// 1.059).
func BenchmarkFig5SpeedupLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := figures.RunSingleCore(benchScale())
		lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
		for _, pol := range []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"} {
			sp := stats.Normalize(sc.Matrix.Series(pol, func(r sim.SingleResult) float64 { return r.IPC }), lru)
			b.ReportMetric(stats.GeoMean(sp), metricName("gmean-", pol))
		}
	}
}

// BenchmarkFig6Ablation reproduces Figure 6: the contribution of
// sampling, reduced sampler associativity, and the skewed organization
// (paper: 3.4%, 2.3%, 3.8%, 4.0%, 5.6%, 5.9%).
func BenchmarkFig6Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab := figures.RunAblation(benchScale())
		b.ReportMetric(ab.Speedup["DBRB alone"], "gmean-alone")
		b.ReportMetric(ab.Speedup["DBRB+sampler"], "gmean-sampler")
		b.ReportMetric(ab.Speedup["DBRB+sampler+3 tables+12-way"], "gmean-full")
	}
}

// BenchmarkFig7MissesRandom reproduces Figure 7: misses normalized to
// LRU with a default random-replacement LLC (paper ameans: Random
// 1.025, Random CDBP ~1.0, Random Sampler 0.925).
func BenchmarkFig7MissesRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rb := figures.RunRandomBaseline(benchScale())
		lru := rb.LRU.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
		for _, pol := range rb.Matrix.Policies {
			norm := stats.Normalize(rb.Matrix.Series(pol, func(r sim.SingleResult) float64 { return r.MPKI }), lru)
			b.ReportMetric(stats.Mean(norm), metricName("amean-", pol))
		}
	}
}

// BenchmarkFig8SpeedupRandom reproduces Figure 8: speedup over the LRU
// baseline with a default random-replacement LLC (paper: Random 0.989,
// Random CDBP 1.001, Random Sampler 1.034).
func BenchmarkFig8SpeedupRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rb := figures.RunRandomBaseline(benchScale())
		lru := rb.LRU.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
		for _, pol := range rb.Matrix.Policies {
			sp := stats.Normalize(rb.Matrix.Series(pol, func(r sim.SingleResult) float64 { return r.IPC }), lru)
			b.ReportMetric(stats.GeoMean(sp), metricName("gmean-", pol))
		}
	}
}

// BenchmarkFig9Accuracy reproduces Figure 9: predictor coverage and
// false positive rates (paper means: reftrace 88%/19.9%, counting
// 67%/7.19%, sampling 59%/3.0%).
func BenchmarkFig9Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := figures.RunSingleCore(benchScale())
		for _, pol := range []string{"TDBP", "CDBP", "Sampler"} {
			var cov, fp float64
			for _, bench := range sc.Matrix.Benchmarks {
				r := sc.Matrix.Get(bench, pol)
				if r.Accuracy != nil {
					cov += r.Accuracy.Coverage()
					fp += r.Accuracy.FalsePositiveRate()
				}
			}
			n := float64(len(sc.Matrix.Benchmarks))
			b.ReportMetric(cov/n*100, metricName("%cov-", pol))
			b.ReportMetric(fp/n*100, metricName("%fp-", pol))
		}
	}
}

// BenchmarkFig10aMulticoreLRU reproduces Figure 10(a): quad-core
// normalized weighted speedup with an LRU default (paper gmeans:
// Sampler 1.125, CDBP 1.10, TADIP 1.076, TDBP 1.056, RRIP 1.045).
func BenchmarkFig10aMulticoreLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc := figures.RunMulticoreFigure(figures.MulticorePolicies(), benchScale())
		for _, pol := range mc.Policies {
			var ws []float64
			for _, mix := range mc.Mixes {
				ws = append(ws, mc.WeightedSpeedup[pol][mix])
			}
			b.ReportMetric(stats.GeoMean(ws), metricName("gmean-", pol))
		}
	}
}

// BenchmarkFig10bMulticoreRandom reproduces Figure 10(b): quad-core
// normalized weighted speedup with a random default (paper gmeans:
// Random Sampler 1.07, Random CDBP 1.06, Random ~1.0).
func BenchmarkFig10bMulticoreRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc := figures.RunMulticoreFigure(figures.RandomPolicies(), benchScale())
		for _, pol := range mc.Policies {
			var ws []float64
			for _, mix := range mc.Mixes {
				ws = append(ws, mc.WeightedSpeedup[pol][mix])
			}
			b.ReportMetric(stats.GeoMean(ws), metricName("gmean-", pol))
		}
	}
}

// BenchmarkHierarchyAccess measures the simulator's raw per-reference
// cost through L1/L2/LLC (not a paper figure; a performance guard for
// the substrate itself).
func BenchmarkHierarchyAccess(b *testing.B) {
	w, err := workloads.ByName("456.hmmer")
	if err != nil {
		b.Fatal(err)
	}
	llc := cache.New(hier.LLCConfig(1), policy.NewLRU())
	core := hier.NewCore(hier.DefaultConfig(), llc)
	gen := w.Generator(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, ok := gen.Next()
		if !ok {
			gen.Reset()
			a, _ = gen.Next()
		}
		core.Access(a)
	}
}

// BenchmarkExtensions runs the beyond-the-paper comparison: cache
// bursts (Liu et al.), AIP (Kharbutli & Solihin), the sampling counting
// predictor (the paper's Section VIII future work), and PLRU bases.
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := figures.RunExtensions(benchScale())
		lru := e.LRU.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
		for _, pol := range e.Matrix.Policies {
			norm := stats.Normalize(e.Matrix.Series(pol, func(r sim.SingleResult) float64 { return r.MPKI }), lru)
			b.ReportMetric(stats.Mean(norm), metricName("amean-", pol))
		}
	}
}

// BenchmarkAblationSamplerSets sweeps the sampler's set count (the
// paper's Section III-A design decision: 32 sets is the trade-off
// point).
func BenchmarkAblationSamplerSets(b *testing.B) {
	sets := []int{8, 32, 128}
	for i := 0; i < b.N; i++ {
		res := figures.SamplerSetsSweep(benchScale(), sets)
		for _, n := range sets {
			b.ReportMetric(res[n], fmt.Sprintf("gmean-%dsets", n))
		}
	}
}

// BenchmarkAblationThreshold sweeps the dead-prediction confidence
// threshold (the paper's Section III-E design decision: 8 of 9 gives
// the best accuracy).
func BenchmarkAblationThreshold(b *testing.B) {
	thrs := []int{2, 8, 9}
	for i := 0; i < b.N; i++ {
		res := figures.ThresholdSweep(benchScale(), thrs)
		for _, th := range thrs {
			b.ReportMetric(res[th], fmt.Sprintf("gmean-thr%d", th))
		}
	}
}

// BenchmarkPrefetchStudy runs the dead-block-directed prefetching
// application study: sequential prefetching with polluting vs.
// dead-block placement.
func BenchmarkPrefetchStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := figures.RunPrefetchStudy(benchScale())
		var accDead float64
		for _, bench := range st.Benchmarks {
			accDead += st.Results["Sampler+PF"][bench].Accuracy()
		}
		b.ReportMetric(accDead/float64(len(st.Benchmarks))*100, "%pf-accuracy")
	}
}

// BenchmarkVictimStudy runs the dead-block-filtered victim cache
// application study (Hu et al.'s use case): filtering insertions by
// predicted liveness concentrates the buffer on blocks with a future.
func BenchmarkVictimStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := figures.RunVictimStudy(benchScale())
		var yu, yf float64
		for _, bench := range st.Benchmarks {
			yu += st.Results["unfiltered"][bench].HitsPerInsert()
			yf += st.Results["dead-filtered"][bench].HitsPerInsert()
		}
		n := float64(len(st.Benchmarks))
		b.ReportMetric(yu/n, "yield-unfiltered")
		b.ReportMetric(yf/n, "yield-filtered")
	}
}
